#!/usr/bin/env python3
"""End-to-end smoke test of the northup-serve HTTP plane (CI leg).

Starts northup-serve on an ephemeral port and drives the whole
observability plane from the outside, stdlib only:

1. /healthz answers with a sane JSON document;
2. /metrics parses as valid Prometheus text (check_prom) *while a job
   executes*, and again afterwards;
3. a GEMM job POSTed over HTTP completes with a result_hash that is
   bit-identical to `northup-serve --run-once` on the same spec — the
   HTTP path adds transport, not arithmetic;
4. a batched {"jobs": [...]} POST is admitted in request order;
5. DELETE of a still-queued job yields state "cancelled", and the SSE
   /events stream of that job reports the terminal state with its
   typed result event;
6. /timeseries validates against the northup_serve artifact schema
   (check_json_artifacts);
7. SIGTERM shuts the server down cleanly (exit code 0).

Usage: serve_smoke.py /path/to/northup-serve
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_json_artifacts  # noqa: E402
import check_prom  # noqa: E402

GEMM_SPEC = {
    "kind": "gemm",
    "name": "smoke-gemm",
    "config": {"n": 128, "seed": 42, "verify_samples": 16},
}
SLOW_SPEC = {"kind": "gemm", "config": {"n": 512}}


def fetch(url, method="GET", body=None, timeout=10):
    req = urllib.request.Request(url, method=method,
                                 data=body.encode() if body else None)
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.read().decode()


def fetch_json(url, method="GET", body=None):
    return json.loads(fetch(url, method, body))


def wait_state(base, job_id, states, deadline_s=30):
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        doc = fetch_json(f"{base}/jobs/{job_id}")
        if doc["state"] in states:
            return doc
        time.sleep(0.05)
    raise TimeoutError(f"job {job_id} never reached {states}")


def main(argv):
    if len(argv) != 2:
        print("usage: serve_smoke.py /path/to/northup-serve",
              file=sys.stderr)
        return 2

    serve = argv[1]
    proc = subprocess.Popen(
        [serve, "--port=0", "--svc-workers=1", "--sample-ms=100"],
        stdout=subprocess.PIPE, text=True)
    try:
        return run(serve, proc)
    finally:
        if proc.poll() is None:
            proc.kill()


def run(serve, proc):
    # The first stdout line carries the ephemeral port (the documented
    # contract of northup-serve).
    line = proc.stdout.readline()
    assert "listening on http://" in line, f"unexpected banner: {line!r}"
    base = line.split("listening on ")[1].strip()
    print(f"serve_smoke: server at {base}")

    health = fetch_json(f"{base}/healthz")
    assert health["status"] in ("ok", "degraded"), health
    assert health["queue_depth"] >= 0, health

    # Submit the hash job plus enough work that a scrape overlaps
    # execution, then lint /metrics WHILE jobs run.
    posted = fetch_json(f"{base}/jobs", "POST", json.dumps(GEMM_SPEC))
    job_id = posted["jobs"][0]["id"]
    check_prom.check_text(fetch(f"{base}/metrics"))
    print("serve_smoke: /metrics parses during execution")

    done = wait_state(base, job_id, ("done",))
    http_hash = done["stats"]["result_hash"]
    assert done["stats"]["verified"] is True, done

    # The same spec through --run-once (same parse path, no HTTP) must
    # produce the identical CRC32 of the output matrix.
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as f:
        json.dump(GEMM_SPEC, f)
        spec_path = f.name
    try:
        out = subprocess.run([serve, f"--run-once={spec_path}"],
                             capture_output=True, text=True, check=True)
        local_hash = json.loads(out.stdout)["stats"]["result_hash"]
    finally:
        os.unlink(spec_path)
    assert http_hash == local_hash, (
        f"HTTP hash {http_hash} != in-process hash {local_hash}")
    print(f"serve_smoke: result_hash {http_hash} bit-identical to "
          "--run-once")

    # Batch admission: one slow job per worker plus victims that stay
    # queued behind them (svc-workers=1).
    batch = {"jobs": [SLOW_SPEC, SLOW_SPEC, GEMM_SPEC]}
    docs = fetch_json(f"{base}/jobs", "POST", json.dumps(batch))["jobs"]
    assert len(docs) == 3, docs
    ids = [d["id"] for d in docs]
    assert ids == sorted(ids), f"batch ids out of request order: {ids}"
    victim = ids[-1]

    # Watch the victim over SSE from a thread, then cancel it; the
    # stream must carry the terminal state and a typed result event.
    events = []
    def watch():
        req = urllib.request.Request(f"{base}/jobs/{victim}/events")
        with urllib.request.urlopen(req, timeout=30) as resp:
            events.append(resp.read().decode())
    watcher = threading.Thread(target=watch)
    watcher.start()
    time.sleep(0.3)  # let the stream attach before the state changes
    cancel = fetch_json(f"{base}/jobs/{victim}", "DELETE")
    assert cancel["cancelled"] is True, cancel
    final = wait_state(base, victim, ("cancelled", "done"))
    watcher.join(timeout=30)
    assert not watcher.is_alive(), "SSE stream never terminated"
    stream = events[0]
    assert "event: state" in stream and "event: result" in stream, stream
    assert f'"state": "{final["state"]}"' in stream, stream
    print(f"serve_smoke: SSE delivered terminal state "
          f"'{final['state']}' for cancelled job {victim}")

    for jid in ids[:-1]:
        wait_state(base, jid, ("done",), deadline_s=60)

    # /timeseries validates against the artifact schema, /metrics still
    # lints after the dust settles.
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as f:
        f.write(fetch(f"{base}/timeseries"))
        ts_path = f.name
    try:
        check_json_artifacts.check(ts_path)
    finally:
        os.unlink(ts_path)
    check_prom.check_text(fetch(f"{base}/metrics"))

    proc.send_signal(signal.SIGTERM)
    rc = proc.wait(timeout=30)
    assert rc == 0, f"northup-serve exited {rc}"
    print("serve_smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
