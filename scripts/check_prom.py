#!/usr/bin/env python3
"""Validate Prometheus text-exposition output (/metrics, *.prom).

A strict-enough parser for the subset northup's
obs::MetricsRegistry::to_prometheus emits, catching the bugs a real
scraper would choke on:

* metric and label names must match the Prometheus grammar
  ([a-zA-Z_:][a-zA-Z0-9_:]*, labels without the colon);
* label values must use only the three legal escapes (\\\\, \\", \\n)
  and close their quotes;
* sample values must parse as floats (including +Inf/-Inf/NaN);
* a # TYPE line must name a valid type, no base name may be TYPE'd
  twice, and every sample must belong to a TYPE'd family (its exact
  base name, or a _sum/_count child of one — the summary shape the
  registry's histograms emit alongside their quantile series);
* no duplicate sample line for the same name+labels.

Usage: check_prom.py FILE   (or `-` for stdin)
Exits non-zero with the offending line on the first violation.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class PromError(ValueError):
    def __init__(self, lineno, line, why):
        super().__init__(f"line {lineno}: {why}\n  {line}")


def parse_labels(lineno, line, block):
    """Parses the inside of a {...} label block, validating escapes."""
    labels = {}
    i = 0
    while i < len(block):
        m = re.match(r"[a-zA-Z_][a-zA-Z0-9_]*", block[i:])
        if not m:
            raise PromError(lineno, line, f"bad label name at {block[i:]!r}")
        name = m.group(0)
        i += len(name)
        if not block[i:].startswith('="'):
            raise PromError(lineno, line, f'label {name} missing ="')
        i += 2
        value = []
        while True:
            if i >= len(block):
                raise PromError(lineno, line, f"label {name} unclosed quote")
            c = block[i]
            if c == "\\":
                if i + 1 >= len(block) or block[i + 1] not in ('\\', '"', "n"):
                    raise PromError(lineno, line,
                                    f"label {name} has an illegal escape")
                value.append(block[i:i + 2])
                i += 2
                continue
            if c == "\n":
                raise PromError(lineno, line, f"label {name} has a raw newline")
            if c == '"':
                i += 1
                break
            value.append(c)
            i += 1
        if name in labels:
            raise PromError(lineno, line, f"duplicate label {name}")
        labels[name] = "".join(value)
        if i < len(block):
            if block[i] != ",":
                raise PromError(lineno, line,
                                f"expected , or end after label {name}")
            i += 1
    return labels


def check_text(text):
    typed = {}        # base name -> type
    seen_samples = set()
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise PromError(lineno, line, "malformed TYPE line")
                _, _, name, kind = parts
                if not NAME_RE.match(name):
                    raise PromError(lineno, line, f"bad metric name {name}")
                if kind not in TYPES:
                    raise PromError(lineno, line, f"bad metric type {kind}")
                if name in typed:
                    raise PromError(lineno, line, f"{name} TYPE'd twice")
                typed[name] = kind
            continue

        m = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})?\s+(\S+)"
                     r"(\s+-?\d+)?$", line)
        if not m:
            raise PromError(lineno, line, "unparseable sample line")
        name, _, block, value = m.group(1), m.group(2), m.group(3), m.group(4)
        labels = parse_labels(lineno, line, block) if block else {}
        if value not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value)
            except ValueError:
                raise PromError(lineno, line, f"bad sample value {value}")
        key = (name, tuple(sorted(labels.items())))
        if key in seen_samples:
            raise PromError(lineno, line, "duplicate sample (name+labels)")
        seen_samples.add(key)

        # Every sample must belong to a TYPE'd family: the exact name, or
        # a _sum/_count/histogram-quantile child of one.
        base = name
        for suffix in ("_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
        if base not in typed:
            raise PromError(lineno, line, f"sample of un-TYPE'd metric {name}")
        samples += 1
    if samples == 0:
        raise PromError(0, "", "no samples at all")
    return len(typed), samples


def main(argv):
    if len(argv) != 2:
        print("usage: check_prom.py FILE|-", file=sys.stderr)
        return 2
    if argv[1] == "-":
        text = sys.stdin.read()
    else:
        with open(argv[1], "r", encoding="utf-8") as f:
            text = f.read()
    try:
        families, samples = check_text(text)
    except PromError as e:
        print(f"check_prom: {argv[1]}: {e}", file=sys.stderr)
        return 1
    print(f"ok [prometheus] {argv[1]}: {families} families, "
          f"{samples} samples")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
