#!/usr/bin/env python3
"""Validate emitted observability artifacts.

Loads every *.json artifact with the stock json parser (the same check
CI ran by piping through `python3 -m json.tool`) and applies
schema-level checks by flavor:

* Chrome traces (virtual or measured): must be an object with a
  "traceEvents" list and a "displayTimeUnit" key; every event needs a
  "ph", and every "X" event needs pid/tid/ts/dur/name.
* Metrics dumps: must have a "counters" object (gauges/histograms
  optional); counter values must be non-negative integers.
* Sampler dumps: "interval_ms" plus a "series" object of [t, v] pairs.
* /timeseries responses (northup-serve): a "northup_serve" version
  marker, now_s/interval_ms, and monotonic [t, v] ring-buffer series.
* Analyzer summaries (northup-analyze --summary-json): a
  "northup_summary" version marker, per-phase critical-path
  attribution, and per-node/per-edge measured bandwidths — the
  plan::Calibrator's input contract.
* Machine profiles (plan::MachineProfile::write_json): a
  "northup_machine_profile" version marker plus nodes/edges/procs
  tables with non-negative rates.
* Overload summaries (bench/svc_overload --json-out): a
  "northup_svc_overload" version marker, per-phase offered/admitted/
  rejection accounting with accounting_ok/hashes_ok true, and a
  check verdict that is not "fail".

Usage: check_json_artifacts.py FILE...
Flavor is sniffed from the parsed structure, not the filename.
Exits non-zero naming the first offending file.
"""

import json
import sys


def check_chrome_trace(path, doc):
    if "displayTimeUnit" not in doc:
        raise ValueError("chrome trace missing displayTimeUnit")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents is not a list")
    for i, ev in enumerate(events):
        if "ph" not in ev:
            raise ValueError(f"traceEvents[{i}] missing ph")
        if ev["ph"] == "X":
            for key in ("pid", "tid", "ts", "dur", "name"):
                if key not in ev:
                    raise ValueError(f"traceEvents[{i}] X event missing {key}")
            if ev["dur"] < 0:
                raise ValueError(f"traceEvents[{i}] negative dur")
    print(f"ok [chrome-trace] {path}: {len(events)} events")


def check_metrics(path, doc):
    counters = doc["counters"]
    if not isinstance(counters, dict):
        raise ValueError("counters is not an object")
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            raise ValueError(f"counter {name} is not a non-negative int")
    for section in ("gauges", "histograms"):
        if section in doc and not isinstance(doc[section], dict):
            raise ValueError(f"{section} is not an object")
    print(f"ok [metrics] {path}: {len(counters)} counters")


def check_northup_serve(path, doc):
    if doc["northup_serve"] != 1:
        raise ValueError("unsupported northup_serve version")
    _require_number(doc, "now_s", "timeseries")
    _require_number(doc, "interval_ms", "timeseries")
    series = doc["series"]
    if not isinstance(series, dict):
        raise ValueError("series is not an object")
    points_total = 0
    for name, points in series.items():
        if not isinstance(points, list):
            raise ValueError(f"series {name} is not a list")
        last_t = -1.0
        for p in points:
            if not (isinstance(p, list) and len(p) == 2
                    and all(isinstance(x, (int, float))
                            and not isinstance(x, bool) for x in p)):
                raise ValueError(f"series {name} has a non-[t, v] sample")
            t = p[0]
            if t < last_t:
                raise ValueError(f"series {name} timestamps not monotonic")
            if t > doc["now_s"] + 1.0:
                raise ValueError(f"series {name} sample is from the future")
            last_t = t
        points_total += len(points)
    print(f"ok [northup-serve] {path}: {len(series)} series, "
          f"{points_total} samples")


def check_sampler(path, doc):
    series = doc["series"]
    for name, points in series.items():
        for p in points:
            if not (isinstance(p, list) and len(p) == 2):
                raise ValueError(f"series {name} has a non-[t, v] sample")
    print(f"ok [sampler] {path}: {len(series)} series")


def _require_number(obj, key, what, allow_negative=False):
    value = obj.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ValueError(f"{what} {key} is not a number")
    if not allow_negative and value < 0:
        raise ValueError(f"{what} {key} is negative")


def check_summary(path, doc):
    if doc["northup_summary"] != 1:
        raise ValueError("unsupported northup_summary version")
    _require_number(doc, "wall_seconds", "summary")
    cp = doc["critical_path"]
    _require_number(cp, "length_s", "critical_path")
    phases = cp["phases"]
    if not isinstance(phases, dict):
        raise ValueError("critical_path.phases is not an object")
    for phase in phases:
        _require_number(phases, phase, "critical_path phase")
    for section, keys in (
        ("nodes", ("in_bytes", "in_bytes_per_s", "out_bytes",
                   "out_bytes_per_s")),
        ("edges", ("samples", "bytes", "seconds", "bytes_per_s",
                   "latency_s")),
        ("computes", ("launches", "groups", "seconds")),
    ):
        rows = doc[section]
        if not isinstance(rows, list):
            raise ValueError(f"{section} is not a list")
        for i, row in enumerate(rows):
            if "name" not in row and "src_name" not in row:
                raise ValueError(f"{section}[{i}] missing name")
            for key in keys:
                _require_number(row, key, f"{section}[{i}]")
    for key in ("read_bytes", "read_seconds", "write_bytes",
                "write_seconds"):
        _require_number(doc["io"], key, "io")
    print(f"ok [northup-summary] {path}: {len(doc['edges'])} edges, "
          f"{len(doc['critical_path']['phases'])} phases")


def check_machine_profile(path, doc):
    if doc["northup_machine_profile"] != 1:
        raise ValueError("unsupported northup_machine_profile version")
    for section, keys in (
        ("nodes", ("read_bytes_per_s", "write_bytes_per_s",
                   "access_latency_s")),
        ("edges", ("bytes_per_s", "latency_s", "samples", "bytes",
                   "seconds")),
        ("procs", ("flops_per_s", "mem_bytes_per_s", "launch_latency_s",
                   "compute_units", "local_mem_bytes")),
    ):
        rows = doc[section]
        if not isinstance(rows, list):
            raise ValueError(f"{section} is not a list")
        for i, row in enumerate(rows):
            if not isinstance(row.get("name", row.get("src_name")), str):
                raise ValueError(f"{section}[{i}] missing name")
            for key in keys:
                _require_number(row, key, f"{section}[{i}]")
    print(f"ok [machine-profile] {path}: {len(doc['nodes'])} nodes, "
          f"{len(doc['edges'])} edges, {len(doc['procs'])} procs")


def check_svc_overload(path, doc):
    if doc["northup_svc_overload"] != 1:
        raise ValueError("unsupported northup_svc_overload version")
    for key in ("saturation_jobs_per_s", "peak_goodput_jobs_per_s",
                "goodput_retention_at_4x", "infeasible_reject_mean_s"):
        _require_number(doc, key, "svc-overload")
    phases = doc["phases"]
    if not isinstance(phases, list) or not phases:
        raise ValueError("phases is not a non-empty list")
    for i, phase in enumerate(phases):
        what = f"phases[{i}]"
        for key in ("multiplier", "offered", "admitted", "done", "expired",
                    "shed", "rate_limited", "queue_full",
                    "infeasible_deadline", "failed", "goodput_jobs_per_s",
                    "p99_e2e_s", "brownout_transitions"):
            _require_number(phase, key, what)
        for key in ("accounting_ok", "hashes_ok"):
            if not isinstance(phase.get(key), bool):
                raise ValueError(f"{what} {key} is not a bool")
            if phase[key] is not True:
                raise ValueError(f"{what} {key} is false")
        rejected = (phase["shed"] + phase["rate_limited"] +
                    phase["queue_full"] + phase["infeasible_deadline"])
        if phase["done"] + rejected > phase["offered"]:
            raise ValueError(f"{what} done+rejected exceeds offered")
    if doc.get("check") not in ("pass", "fail", "off"):
        raise ValueError("check is not pass/fail/off")
    if doc["check"] == "fail":
        raise ValueError("overload-check gates reported FAIL")
    print(f"ok [svc-overload] {path}: {len(phases)} phases, "
          f"retention {doc['goodput_retention_at_4x']:.2f}, "
          f"check {doc['check']}")


def check(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError("top-level JSON is not an object")
    if "traceEvents" in doc:
        check_chrome_trace(path, doc)
    elif "counters" in doc:
        check_metrics(path, doc)
    elif "northup_serve" in doc:
        check_northup_serve(path, doc)
    elif "series" in doc:
        check_sampler(path, doc)
    elif "northup_summary" in doc:
        check_summary(path, doc)
    elif "northup_machine_profile" in doc:
        check_machine_profile(path, doc)
    elif "northup_svc_overload" in doc:
        check_svc_overload(path, doc)
    else:
        raise ValueError("unrecognized artifact flavor (no traceEvents/"
                         "counters/series/northup_summary/"
                         "northup_machine_profile/northup_svc_overload key)")


def main(argv):
    if len(argv) < 2:
        print("usage: check_json_artifacts.py FILE...", file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            check(path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
