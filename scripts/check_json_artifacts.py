#!/usr/bin/env python3
"""Validate emitted observability artifacts.

Loads every *.json artifact with the stock json parser (the same check
CI ran by piping through `python3 -m json.tool`) and applies
schema-level checks by flavor:

* Chrome traces (virtual or measured): must be an object with a
  "traceEvents" list and a "displayTimeUnit" key; every event needs a
  "ph", and every "X" event needs pid/tid/ts/dur/name.
* Metrics dumps: must have a "counters" object (gauges/histograms
  optional); counter values must be non-negative integers.
* Sampler dumps: "interval_ms" plus a "series" object of [t, v] pairs.

Usage: check_json_artifacts.py FILE...
Flavor is sniffed from the parsed structure, not the filename.
Exits non-zero naming the first offending file.
"""

import json
import sys


def check_chrome_trace(path, doc):
    if "displayTimeUnit" not in doc:
        raise ValueError("chrome trace missing displayTimeUnit")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents is not a list")
    for i, ev in enumerate(events):
        if "ph" not in ev:
            raise ValueError(f"traceEvents[{i}] missing ph")
        if ev["ph"] == "X":
            for key in ("pid", "tid", "ts", "dur", "name"):
                if key not in ev:
                    raise ValueError(f"traceEvents[{i}] X event missing {key}")
            if ev["dur"] < 0:
                raise ValueError(f"traceEvents[{i}] negative dur")
    print(f"ok [chrome-trace] {path}: {len(events)} events")


def check_metrics(path, doc):
    counters = doc["counters"]
    if not isinstance(counters, dict):
        raise ValueError("counters is not an object")
    for name, value in counters.items():
        if not isinstance(value, int) or value < 0:
            raise ValueError(f"counter {name} is not a non-negative int")
    for section in ("gauges", "histograms"):
        if section in doc and not isinstance(doc[section], dict):
            raise ValueError(f"{section} is not an object")
    print(f"ok [metrics] {path}: {len(counters)} counters")


def check_sampler(path, doc):
    series = doc["series"]
    for name, points in series.items():
        for p in points:
            if not (isinstance(p, list) and len(p) == 2):
                raise ValueError(f"series {name} has a non-[t, v] sample")
    print(f"ok [sampler] {path}: {len(series)} series")


def check(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        raise ValueError("top-level JSON is not an object")
    if "traceEvents" in doc:
        check_chrome_trace(path, doc)
    elif "counters" in doc:
        check_metrics(path, doc)
    elif "series" in doc:
        check_sampler(path, doc)
    else:
        raise ValueError("unrecognized artifact flavor "
                         "(no traceEvents/counters/series key)")


def main(argv):
    if len(argv) < 2:
        print("usage: check_json_artifacts.py FILE...", file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            check(path)
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
            print(f"FAIL {path}: {e}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
