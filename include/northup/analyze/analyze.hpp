// northup-analyze — offline analysis of flight-recorder runs.
//
// Ingests an obs::RecordedRun (in-process snapshot or a .nulog file) and
// derives the artifacts the virtual-time tooling produces for the
// EventSim, but for *measured* executions:
//   * chrome_trace_json(): a Perfetto-loadable Chrome trace with causal
//     flow arrows along span parents and per-node bandwidth/occupancy
//     counter tracks;
//   * measured_critical_path(): the wall-clock critical path with
//     per-phase attribution (the core::ScheduleReport idea generalized
//     from simulated task graphs to recorded event streams);
//   * whatif_storage(): the §V-D storage re-cost, feeding the measured
//     kIo event stream through mem::project_storage.
//
// Lives in its own library (northup_analyze) rather than northup_obs
// because the memsim layer already links obs — the projection dependency
// must point this way.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "northup/memsim/projection.hpp"
#include "northup/obs/event_log.hpp"
#include "northup/sim/models.hpp"

namespace northup::analyze {

/// Aggregate counts of one recorded run.
struct Summary {
  std::uint64_t events = 0;
  std::uint64_t spans = 0;  ///< kSpanBegin count
  std::uint64_t moves = 0;
  std::uint64_t ios = 0;
  std::uint64_t computes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t retries = 0;
  std::uint64_t breaker_transitions = 0;
  std::uint64_t allocs = 0;
  std::uint64_t bytes_moved = 0;  ///< sum of kMove values
  double wall_seconds = 0.0;      ///< last event end - first event start
  std::uint64_t dropped = 0;
  std::uint32_t thread_count = 0;
};
Summary summarize(const obs::RecordedRun& run);

/// Structural validation: every event's span chain must resolve, span
/// begins must have matching ends.
struct ValidationReport {
  bool ok = true;
  std::uint64_t orphan_parents = 0;   ///< SpanBegin whose parent is unknown
  std::uint64_t orphan_events = 0;    ///< event whose owning span is unknown
  std::uint64_t unclosed_spans = 0;   ///< kSpanBegin without kSpanEnd
  std::vector<std::string> problems;  ///< human-readable details (bounded)
};
ValidationReport validate(const obs::RecordedRun& run);

/// One segment of the measured critical path.
struct PathSegment {
  double begin_s = 0.0;  ///< seconds from the run's first event
  double end_s = 0.0;
  std::string name;   ///< span or event name carrying this segment
  std::string phase;  ///< attribution key ("io", "cpu", "runtime", "idle"...)
  std::uint32_t node = obs::kNoNode;
};

/// Measured critical path over the recorded window. The walk starts at
/// the last event end and repeatedly descends into the latest-finishing
/// child (sub-span or duration event) of the current span, attributing
/// uncovered gaps to the enclosing span's phase; time outside any span is
/// "idle". By construction attribution sums exactly to length_s, and
/// length_s equals the recorded window, so it never exceeds the measured
/// makespan.
struct CriticalPath {
  double length_s = 0.0;
  std::vector<PathSegment> segments;          ///< in increasing time order
  std::map<std::string, double> phase_seconds;  ///< sums to length_s
};
CriticalPath measured_critical_path(const obs::RecordedRun& run);

/// Chrome trace-event JSON of the measured run: pid 1 carries the span
/// tree (one track per recording thread, flow arrows parent -> child),
/// pid 2 carries per-node move/IO events and cache/retry/breaker
/// instants plus "C" counter tracks with windowed per-node bandwidth
/// (MB/s) and occupancy.
std::string chrome_trace_json(const obs::RecordedRun& run);

/// Writes chrome_trace_json() to `path`; throws util::Error naming the
/// path on failure.
void write_chrome_trace(const obs::RecordedRun& run, const std::string& path);

/// The measured I/O stream: one mem::IoRecord per kIo event, in
/// timestamp order — the input §V-D's emulator expects.
std::vector<mem::IoRecord> io_records(const obs::RecordedRun& run);

/// Total measured wall seconds spent in file I/O (sum of kIo durations;
/// concurrent I/O on different threads counts once per event).
double measured_io_seconds(const obs::RecordedRun& run);

/// The bandwidth model under which replaying io_records() reproduces the
/// measured I/O time exactly: effective read/write bandwidths from the
/// run's own totals, zero access latency. The sanity anchor of the
/// what-if sweep.
sim::BandwidthModel identity_model(const obs::RecordedRun& run);

/// §V-D what-if storage re-cost of a measured run.
struct WhatIf {
  double measured_io_s = 0.0;
  double measured_total_s = 0.0;  ///< max(recorded window, measured_io_s)
  mem::ProjectionPoint identity;  ///< re-cost under identity_model()
  std::vector<mem::ProjectionPoint> sweep;  ///< fig9_storage_sweep points
};
WhatIf whatif_storage(const obs::RecordedRun& run);

/// Multi-line human-readable report (summary + critical path + what-if).
std::string report(const obs::RecordedRun& run);

// --- Calibration extraction (shared with northup::plan) --------------------

/// Measured transfer statistics of one directed src→dst edge, with the
/// least-squares accumulators of a duration = latency + bytes/bandwidth
/// fit over the edge's kMove samples.
struct EdgeMoveStats {
  std::uint32_t src = obs::kNoNode;
  std::uint32_t dst = obs::kNoNode;
  std::string src_name;
  std::string dst_name;
  std::uint64_t samples = 0;
  std::uint64_t bytes = 0;
  double seconds = 0.0;
  // Least-squares accumulators over (x = bytes, y = duration seconds).
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;

  /// Fitted effective bandwidth: 1 / slope when the regression is well
  /// conditioned and positive, else the aggregate bytes/seconds ratio.
  double fitted_bytes_per_s() const;
  /// Fitted per-transfer latency: the regression intercept clamped at 0
  /// (0 whenever fitted_bytes_per_s fell back to the aggregate ratio).
  double fitted_latency_s() const;
};

/// Per-edge kMove aggregation of a recorded run, sorted by (src, dst).
std::vector<EdgeMoveStats> edge_move_stats(const obs::RecordedRun& run);

/// Measured kernel-launch statistics of one processor-carrying node.
struct ComputeStats {
  std::uint32_t node = obs::kNoNode;
  std::string node_name;
  std::uint64_t launches = 0;
  std::uint64_t groups = 0;  ///< sum of per-launch workgroup counts
  double seconds = 0.0;
};

/// Per-node kCompute aggregation of a recorded run, sorted by node.
std::vector<ComputeStats> compute_stats(const obs::RecordedRun& run);

/// Machine-readable run summary (versioned: `"northup_summary": 1`):
/// per-phase critical-path attribution, per-node measured in/out
/// bandwidths, fitted per-edge bandwidth/latency (the plan::Calibrator
/// input contract), I/O totals, and per-node compute statistics.
std::string summary_json(const obs::RecordedRun& run);

/// Writes summary_json() to `path`; throws util::Error naming the path.
void write_summary_json(const obs::RecordedRun& run, const std::string& path);

}  // namespace northup::analyze
