// Per-tree-node capacity accounting over DataManager (northup::cache).
//
// A BufferPool watches one memory node: it tracks bytes in use and the
// high-water mark against TopoNode::capacity, counts pinned (unevictable)
// bytes, and frees space on demand by invoking an evictor installed by
// the node's ShardCache. DataManager::alloc routes capacity pressure on
// pool-managed nodes through make_room() before failing, so a full node
// sheds LRU cached shards instead of throwing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "northup/data/data_manager.hpp"
#include "northup/topo/tree.hpp"

namespace northup::cache {

class BufferPool {
 public:
  /// `dm` must outlive the pool. Registers the "pool.high_water.<node>"
  /// gauge when the manager has metrics attached.
  BufferPool(data::DataManager& dm, topo::NodeId node);

  topo::NodeId node() const { return node_; }

  /// Evictor callback: release one unpinned cached buffer (LRU first),
  /// returning false when nothing is evictable. Installed by ShardCache.
  void set_evictor(std::function<bool()> evict_one) {
    evict_one_ = std::move(evict_one);
  }

  /// Frees storage until `bytes` more fit on the node, one eviction at a
  /// time. Returns false if the evictor runs dry first.
  bool make_room(std::uint64_t bytes);

  /// Allocates through the DataManager (which itself re-enters make_room
  /// under pressure) and refreshes the high-water gauge.
  data::Buffer alloc(std::uint64_t size);
  void release(data::Buffer& buffer);

  /// Pinned bytes may not be evicted (a kernel holds a view of them).
  void pin(std::uint64_t bytes);
  void unpin(std::uint64_t bytes);

  std::uint64_t bytes_in_use() const;
  std::uint64_t capacity() const;
  std::uint64_t pinned_bytes() const {
    return pinned_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// Folds the node's current usage into the high-water mark; called by
  /// the cache manager after every allocation on this node.
  void note_usage();

 private:
  data::DataManager& dm_;
  topo::NodeId node_;
  std::function<bool()> evict_one_;
  // Atomic so planner threads can poll usage while the cache manager's
  // lock serializes mutation paths.
  std::atomic<std::uint64_t> pinned_bytes_{0};
  std::atomic<std::uint64_t> high_water_{0};
  obs::Gauge* high_water_gauge_ = nullptr;
};

}  // namespace northup::cache
