// Per-tree-node capacity accounting over DataManager (northup::cache).
//
// A BufferPool watches one memory node: it tracks bytes in use and the
// high-water mark against TopoNode::capacity, counts pinned (unevictable)
// bytes, and frees space on demand by invoking an evictor installed by
// the node's ShardCache. DataManager::alloc routes capacity pressure on
// pool-managed nodes through make_room() before failing, so a full node
// sheds LRU cached shards instead of throwing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>

#include "northup/data/data_manager.hpp"
#include "northup/topo/tree.hpp"

namespace northup::cache {

class BufferPool {
 public:
  /// `dm` must outlive the pool. Registers the "pool.high_water.<node>"
  /// gauge when the manager has metrics attached.
  BufferPool(data::DataManager& dm, topo::NodeId node);

  topo::NodeId node() const { return node_; }

  /// Evictor callback: release one unpinned cached buffer (LRU first),
  /// returning false when nothing is evictable. Installed by ShardCache.
  void set_evictor(std::function<bool()> evict_one) {
    evict_one_ = std::move(evict_one);
  }

  /// Frees storage until `bytes` more fit on the node, one eviction at a
  /// time. Returns false if the evictor runs dry first.
  bool make_room(std::uint64_t bytes);

  /// Allocates through the DataManager (which itself re-enters make_room
  /// under pressure) and refreshes the high-water gauge.
  data::Buffer alloc(std::uint64_t size);
  void release(data::Buffer& buffer);

  /// Pinned bytes may not be evicted (a kernel holds a view of them).
  void pin(std::uint64_t bytes);
  void unpin(std::uint64_t bytes);

  /// Zero-copy view of `buffer` with its bytes pinned for the view's
  /// lifetime: evicting (or releasing) storage under a live mapping would
  /// invalidate the pointer mid-kernel. Throws like
  /// DataManager::host_view when the node's backend has no mapping; pair
  /// with unpin_view. Pinned view bytes are tracked separately
  /// (view_bytes, "pool.view_bytes.<node>" gauge) so capacity planning
  /// can see how much of the node is held by mappings rather than cache
  /// pins.
  std::byte* pin_view(const data::Buffer& buffer);
  void unpin_view(const data::Buffer& buffer);

  /// Bytes currently pinned by live views (subset of pinned_bytes).
  std::uint64_t view_bytes() const {
    return view_bytes_.load(std::memory_order_relaxed);
  }

  std::uint64_t bytes_in_use() const;
  std::uint64_t capacity() const;
  std::uint64_t pinned_bytes() const {
    return pinned_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }

  /// Folds the node's current usage into the high-water mark; called by
  /// the cache manager after every allocation on this node.
  void note_usage();

 private:
  data::DataManager& dm_;
  topo::NodeId node_;
  std::function<bool()> evict_one_;
  // Atomic so planner threads can poll usage while the cache manager's
  // lock serializes mutation paths.
  std::atomic<std::uint64_t> pinned_bytes_{0};
  std::atomic<std::uint64_t> view_bytes_{0};
  std::atomic<std::uint64_t> high_water_{0};
  obs::Gauge* high_water_gauge_ = nullptr;
  obs::Gauge* view_bytes_gauge_ = nullptr;
};

/// RAII pin_view/unpin_view pair: holds a zero-copy view of one buffer
/// with its bytes pinned in the pool until the guard dies.
class ScopedView {
 public:
  ScopedView() = default;
  ScopedView(BufferPool& pool, const data::Buffer& buffer)
      : pool_(&pool), buffer_(&buffer), data_(pool.pin_view(buffer)) {}

  ScopedView(ScopedView&& other) noexcept
      : pool_(std::exchange(other.pool_, nullptr)),
        buffer_(std::exchange(other.buffer_, nullptr)),
        data_(std::exchange(other.data_, nullptr)) {}

  ScopedView& operator=(ScopedView&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = std::exchange(other.pool_, nullptr);
      buffer_ = std::exchange(other.buffer_, nullptr);
      data_ = std::exchange(other.data_, nullptr);
    }
    return *this;
  }

  ScopedView(const ScopedView&) = delete;
  ScopedView& operator=(const ScopedView&) = delete;

  ~ScopedView() { reset(); }

  void reset() {
    if (pool_ != nullptr) pool_->unpin_view(*buffer_);
    pool_ = nullptr;
    buffer_ = nullptr;
    data_ = nullptr;
  }

  bool valid() const { return data_ != nullptr; }
  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }

 private:
  BufferPool* pool_ = nullptr;
  const data::Buffer* buffer_ = nullptr;
  std::byte* data_ = nullptr;
};

}  // namespace northup::cache
