// Content-keyed cross-call shard cache for one memory node.
//
// A ShardCache remembers which parent regions are already resident at its
// node. Downloads go through acquire(): a request whose (source buffer
// id, offset, pitch, rows, row bytes) key matches a live entry is a hit —
// no bytes move, the EventSim is charged a zero-duration "cache"-phase
// task — while a miss allocates through the node's BufferPool (evicting
// LRU entries under pressure) and performs the real transfer. Entries are
// pinned while acquired, written back to their source region on eviction
// when dirty, and invalidated when the source buffer is overwritten or
// released (DataManager's CacheBackend notifications).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "northup/cache/buffer_pool.hpp"
#include "northup/data/data_manager.hpp"

namespace northup::cache {

/// Normalized content key of one cached shard. Contiguous requests and
/// 2-D requests whose pitch equals the row width collapse to rows == 1,
/// so move_data_down_cached and an equivalent dense move_block_2d request
/// share an entry.
struct ShardKey {
  std::uint64_t src_id = 0;
  std::uint64_t src_offset = 0;
  std::uint64_t src_pitch = 0;
  std::uint64_t rows = 1;
  std::uint64_t row_bytes = 0;

  auto operator<=>(const ShardKey&) const = default;
};

class ShardCache {
 public:
  /// `hit_time_s` is the modeled per-hit lookup cost (default free).
  ShardCache(data::DataManager& dm, BufferPool& pool, topo::NodeId node,
             double hit_time_s = 0.0);
  ~ShardCache();

  ShardCache(const ShardCache&) = delete;
  ShardCache& operator=(const ShardCache&) = delete;

  topo::NodeId node() const { return node_; }

  /// Cached download (see file comment). Returns a pinned cache-owned
  /// buffer; every acquire must be balanced by a release.
  data::Buffer* acquire(const data::Buffer& src, std::uint64_t rows,
                        std::uint64_t row_bytes, std::uint64_t src_offset,
                        std::uint64_t src_pitch);

  /// Unpins a shard. `dirty` marks its bytes newer than the source's:
  /// they are written back to the source region on eviction or flush.
  void release(data::Buffer* shard, bool dirty);

  /// True when `shard` points at a buffer owned by this cache.
  bool owns(const data::Buffer* shard) const;

  /// Evicts the least-recently-used unpinned entry (dirty -> writeback
  /// first). Returns false when every entry is pinned or the cache is
  /// empty. Wired into the BufferPool as its evictor.
  bool evict_one();

  /// Drops entries sourced from buffer `src_id` overlapping
  /// [offset, offset + size) — their contents are stale. Pinned entries
  /// become zombies: unreachable for future hits, freed on last release.
  void invalidate_overlap(std::uint64_t src_id, std::uint64_t offset,
                          std::uint64_t size);

  /// Drops every entry sourced from `src_id` (source released; no
  /// writeback possible).
  void invalidate_source(std::uint64_t src_id);

  /// Writes back dirty unpinned entries and drops all unpinned entries.
  void flush();

  std::uint64_t entry_count() const { return index_.size(); }
  std::uint64_t cached_bytes() const;
  /// Bytes held by unpinned (evictable) live entries.
  std::uint64_t evictable_bytes() const;

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    ShardKey key;
    data::Buffer src;   ///< source handle snapshot (writeback target)
    data::Buffer buf;   ///< dense rows * row_bytes shard at node_
    std::uint64_t stamp = 0;
    std::uint32_t pins = 0;
    bool dirty = false;
    bool live = true;   ///< false once invalidated while pinned (zombie)
  };

  static ShardKey normalize(const data::Buffer& src, std::uint64_t rows,
                            std::uint64_t row_bytes, std::uint64_t src_offset,
                            std::uint64_t src_pitch);

  /// Zero-duration "cache"-phase EventSim task (hit/evict markers; the
  /// TraceWriter renders them as instant events).
  void charge_cache_task(const std::string& label, Entry& entry);

  void write_back(Entry& entry);
  /// Removes `entry` from the key index; destroys it unless pinned.
  void drop(Entry* entry);
  /// Releases the entry's buffer and erases it from the store.
  void destroy(Entry* entry);

  data::DataManager& dm_;
  BufferPool& pool_;
  topo::NodeId node_;
  double hit_time_s_;
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
  /// Entries own their storage here, keyed by the stable address of
  /// Entry::buf (what acquire hands out); zombies live only here.
  std::map<const data::Buffer*, std::unique_ptr<Entry>> store_;
  /// Live entries by content key.
  std::map<ShardKey, Entry*> index_;
  obs::Counter* hit_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
  obs::Counter* eviction_counter_ = nullptr;
};

}  // namespace northup::cache
