// The cache subsystem's face to the Runtime: one BufferPool per memory
// node plus one ShardCache per non-root node (the root has no parent to
// cache from), implementing data::CacheBackend so DataManager can route
// capacity pressure, cached downloads, and coherence notifications here.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "northup/cache/buffer_pool.hpp"
#include "northup/cache/shard_cache.hpp"
#include "northup/data/cache_backend.hpp"
#include "northup/data/data_manager.hpp"

namespace northup::cache {

struct CacheOptions {
  double hit_time_s = 0.0;  ///< modeled lookup cost per cache hit
};

/// Thread-safe: one coarse recursive lock serializes every cache-layer
/// operation (acquire/release/coherence/eviction). Recursive because an
/// acquire's miss path re-enters make_room via DataManager::alloc, and
/// its fill copy re-enters on_written via notify_written. Same-node cache
/// traffic serializes; the overlap that matters (download vs compute vs
/// upload, which run outside this lock) is unaffected.
class CacheManager final : public data::CacheBackend {
 public:
  using Options = CacheOptions;

  /// Builds pools/caches for every node of `dm`'s tree and installs
  /// itself as `dm`'s cache backend. `dm` must outlive the manager.
  explicit CacheManager(data::DataManager& dm, Options options = {});
  ~CacheManager() override;

  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  BufferPool* pool(topo::NodeId node);
  ShardCache* shard_cache(topo::NodeId node);

  /// Writes back dirty entries and drops all unpinned entries, tree-wide.
  void flush();

  // --- data::CacheBackend ---
  bool manages(topo::NodeId node) const override;
  bool caches(topo::NodeId node) const override;
  bool make_room(topo::NodeId node, std::uint64_t bytes) override;
  std::uint64_t evictable_bytes(topo::NodeId node) const override;
  data::Buffer* acquire(const data::Buffer& src, topo::NodeId child,
                        std::uint64_t rows, std::uint64_t row_bytes,
                        std::uint64_t src_offset,
                        std::uint64_t src_pitch) override;
  void release_shard(data::Buffer* shard, bool dirty) override;
  void on_written(const data::Buffer& dst, std::uint64_t offset,
                  std::uint64_t size) override;
  void on_released(const data::Buffer& buffer) override;
  void note_alloc(topo::NodeId node) override;

 private:
  mutable std::recursive_mutex mu_;
  data::DataManager& dm_;
  Options options_;
  std::map<topo::NodeId, std::unique_ptr<BufferPool>> pools_;
  std::map<topo::NodeId, std::unique_ptr<ShardCache>> caches_;
};

}  // namespace northup::cache
