// First-order performance models for the simulated substrate.
//
// The paper (§V-D) projects faster storage with a first-order model that
// charges each I/O `bytes / bandwidth`. We use the same style of model for
// every component — storage, interconnect, and processors — so that
// in-memory vs. out-of-core comparisons are internally consistent.
#pragma once

#include <cstdint>
#include <string>

#include "northup/util/assert.hpp"

namespace northup::sim {

/// Asymmetric read/write bandwidth with a fixed per-access latency.
/// Covers storage devices (SSD/HDD/NVM), interconnects (PCIe), and plain
/// DRAM copies. All rates are bytes/second; latency is seconds/access.
struct BandwidthModel {
  double read_bytes_per_s = 0.0;
  double write_bytes_per_s = 0.0;
  double access_latency_s = 0.0;

  /// Time to read `bytes` split across `accesses` device accesses. The
  /// per-access latency term is what penalizes strided / fragmented I/O
  /// (e.g. SpMV's variable-size shards vs HotSpot's regular blocks, §V-B).
  double read_time(std::uint64_t bytes, std::uint64_t accesses = 1) const {
    NU_ASSERT(read_bytes_per_s > 0.0);
    return access_latency_s * static_cast<double>(accesses) +
           static_cast<double>(bytes) / read_bytes_per_s;
  }

  /// Time to write `bytes` split across `accesses` device accesses.
  double write_time(std::uint64_t bytes, std::uint64_t accesses = 1) const {
    NU_ASSERT(write_bytes_per_s > 0.0);
    return access_latency_s * static_cast<double>(accesses) +
           static_cast<double>(bytes) / write_bytes_per_s;
  }
};

/// Roofline processor model: execution time is the max of the compute time
/// (flops / sustained FLOP/s) and the memory time (bytes / sustained B/s),
/// divided by an occupancy factor in (0, 1] supplied by the device layer
/// when the launch is too small to fill the machine.
struct RooflineModel {
  double flops_per_s = 0.0;        ///< sustained, not peak
  double mem_bytes_per_s = 0.0;    ///< sustained device-memory bandwidth
  double launch_latency_s = 0.0;   ///< fixed per-kernel-launch overhead

  double kernel_time(double flops, double bytes, double occupancy = 1.0) const {
    NU_ASSERT(flops_per_s > 0.0 && mem_bytes_per_s > 0.0);
    NU_ASSERT(occupancy > 0.0 && occupancy <= 1.0);
    const double compute = flops / flops_per_s;
    const double memory = bytes / mem_bytes_per_s;
    return launch_latency_s + (compute > memory ? compute : memory) / occupancy;
  }

  /// Arithmetic-intensity break-even point (flops/byte) of this processor.
  double ridge_point() const { return flops_per_s / mem_bytes_per_s; }
};

/// Named model presets calibrated to the paper's testbed (§V-A). These
/// numbers are sustained rates (peak × an efficiency factor) — see
/// DESIGN.md §5 for the calibration rationale.
struct ModelPresets {
  // --- Storage (read MB/s, write MB/s as the paper quotes them). ---
  static BandwidthModel ssd(double read_mb_s = 1400.0,
                            double write_mb_s = 600.0) {
    return {read_mb_s * 1e6, write_mb_s * 1e6, 60e-6};
  }
  static BandwidthModel hdd() { return {150e6, 140e6, 8e-3}; }
  /// DRAM-resident NVM tier (Optane-class) for deep-hierarchy topologies.
  static BandwidthModel nvm() { return {6.0e9, 2.2e9, 1e-6}; }
  static BandwidthModel dram() { return {12.8e9, 12.8e9, 100e-9}; }
  static BandwidthModel pcie3_x16() { return {12e9, 12e9, 10e-6}; }
  /// Effective OpenCL host<->device copy path: pageable (unpinned) host
  /// buffers + per-clEnqueue driver overhead throttle the link to a few
  /// GB/s on the paper-era ROCm stack.
  static BandwidthModel pcie_opencl() { return {2.5e9, 2.5e9, 30e-6}; }

  // --- Processors. ---
  /// FirePro W9100-class discrete GPU: 5.24 TF peak × ~0.5, 320 GB/s × 0.6.
  static RooflineModel dgpu() { return {2600e9, 192e9, 15e-6}; }
  /// A10-7850K integrated GPU: 737 GF peak × ~0.55, shared 25.6 GB/s.
  static RooflineModel apu_gpu() { return {405e9, 18e9, 8e-6}; }
  /// A10-class 4-core CPU: ~48 GF peak × 0.35 vectorized, 21 GB/s.
  static RooflineModel cpu() { return {17e9, 15e9, 1e-6}; }
};

}  // namespace northup::sim
