// Deterministic discrete-event list scheduler.
//
// The Northup runtime records every action it performs — buffer setup, file
// read, DMA copy, kernel launch — as a task bound to a resource (the SSD's
// I/O engine, the PCIe DMA engine, the GPU's compute-unit array, a CPU
// core) with a model-derived duration and explicit dependencies. Replaying
// that task graph here yields the virtual makespan, the per-resource busy
// time, and the per-phase breakdown the paper reports in Figs 6-9, with
// copy/compute overlap handled exactly (tasks on distinct resources run
// concurrently; tasks on one resource serialize FIFO).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "northup/util/assert.hpp"

namespace northup::sim {

using ResourceId = std::uint32_t;
using TaskId = std::uint32_t;

inline constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();

/// One recorded action in the execution trace.
struct TaskSpec {
  std::string label;          ///< free-form, for debugging / critical path
  std::string phase;          ///< aggregation key: "cpu", "gpu", "setup", "io", "transfer"
  ResourceId resource = 0;    ///< resource the task occupies while running
  double duration = 0.0;      ///< seconds of virtual time
  std::vector<TaskId> deps;   ///< tasks that must finish before this starts
};

/// Result of scheduling one task.
struct TaskTiming {
  double start = 0.0;
  double finish = 0.0;
};

/// Deterministic list scheduler over a recorded task graph.
///
/// Semantics: a task starts at max(finish of all deps, finish of the
/// previously submitted task on the same resource). Dependencies must refer
/// to already-submitted tasks, which both makes scheduling single-pass and
/// rules out cycles by construction.
///
/// Thread-safe: concurrent submissions from exec::TaskGraph workers are
/// serialized internally. Under a pipelined run the submission order (and
/// so the virtual schedule) follows actual execution order; the inline
/// execution mode keeps the legacy deterministic order.
class EventSim {
 public:
  /// Registers a resource (an engine that executes one task at a time).
  ResourceId add_resource(std::string name);

  /// Submits a task; returns its id. Dependencies must be prior task ids.
  /// The task is scheduled immediately (eager, single-pass).
  TaskId add_task(TaskSpec spec);

  /// Convenience overload for the common dependency shapes.
  TaskId add_task(std::string label, std::string phase, ResourceId resource,
                  double duration, std::vector<TaskId> deps = {});

  std::size_t task_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }
  std::size_t resource_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return resource_names_.size();
  }

  const TaskSpec& task(TaskId id) const;
  TaskTiming timing(TaskId id) const;
  const std::string& resource_name(ResourceId id) const;

  /// Finish time of the latest-finishing task (0 when empty).
  double makespan() const {
    std::lock_guard<std::mutex> lock(mu_);
    return makespan_;
  }

  /// Total busy time of a resource (sum of its task durations).
  double resource_busy(ResourceId id) const;

  /// Sum of task durations per phase key — the stacked-bar data of
  /// Figs 7/8. With overlap the phase sums can exceed the makespan.
  std::map<std::string, double> phase_totals() const;

  /// Tasks forming one longest path through the schedule, in execution
  /// order. Follows, for each task, whichever of its blocking predecessors
  /// (dependency or resource predecessor) determined its start time.
  std::vector<TaskId> critical_path() const;

  /// Clears all tasks and timings but keeps registered resources.
  void reset_tasks();

 private:
  mutable std::mutex mu_;
  // deques: stable element addresses, so the references task() and
  // resource_name() hand out stay valid while other threads submit.
  std::deque<std::string> resource_names_;
  std::vector<double> resource_available_;   ///< next free time per resource
  std::vector<TaskId> resource_last_task_;   ///< last task submitted per resource
  std::deque<TaskSpec> tasks_;
  std::vector<TaskTiming> timings_;
  std::vector<TaskId> start_determiner_;     ///< which predecessor set our start
  double makespan_ = 0.0;
};

}  // namespace northup::sim
