// Virtual-time work-stealing simulator — the CPU+GPU load-balancing case
// study of §V-E / Fig 10 / Fig 11.
//
// At a shared-memory APU leaf, each queue is owned by a CPU thread or a
// GPU workgroup; owners pop tasks from the tail of their local queue, and
// a fast worker whose queue has drained steals from the head of another
// queue. We replay that protocol in deterministic virtual time: every
// worker has a speed (work units per second), every task a cost; the
// simulator advances the earliest-finishing worker, letting it pop its own
// tail or steal from the currently longest victim queue. This reproduces
// the up-to-24% CPU+GPU-over-GPU-only improvement of Fig 11 without
// depending on the host machine's actual core count.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "northup/util/assert.hpp"

namespace northup::sched {

/// One simulated queue owner (CPU thread or GPU workgroup slot).
struct SimWorker {
  std::string name;
  double speed = 1.0;  ///< work units per second
  bool can_steal = true;
};

/// Outcome of one simulation run.
struct StealSimResult {
  double makespan = 0.0;
  std::vector<double> busy;                 ///< per-worker busy seconds
  std::vector<std::uint64_t> executed;      ///< per-worker task count
  std::uint64_t steals = 0;
};

/// Deterministic work-stealing schedule simulator.
class StealSim {
 public:
  /// Adds a worker; returns its index.
  std::size_t add_worker(SimWorker worker);

  /// Enqueues a task of `cost` work units on `worker`'s local queue.
  void add_task(std::size_t worker, double cost);

  std::size_t worker_count() const { return workers_.size(); }
  std::size_t task_count() const { return total_tasks_; }

  /// Runs the schedule. `stealing` toggles the work-stealing protocol
  /// (off = each worker only drains its own queue — the imbalanced
  /// baseline). The initial queues are preserved, so run() can be called
  /// repeatedly with different policies.
  StealSimResult run(bool stealing) const;

 private:
  std::vector<SimWorker> workers_;
  std::vector<std::deque<double>> queues_;
  std::size_t total_tasks_ = 0;
};

}  // namespace northup::sched
