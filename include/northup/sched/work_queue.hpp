// Per-tree-node work queues (Listing 1's `list *work_queue[numQueues]`).
//
// "The tree node can also store the links to work queues which keep track
//  of the recursive tasks; and this allows for the implementation of load
//  balancing across different tree branches" (§III-B). Given n chunks at
// level i, n tasks are enqueued; whenever space frees up at level i+1,
// more chunks are scheduled for movement (§III-C multi-stage transfer).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "northup/obs/metrics.hpp"
#include "northup/topo/tree.hpp"
#include "northup/util/assert.hpp"

namespace northup::sched {

/// A recursive task tracked by a node's queue.
struct QueueTask {
  std::uint64_t id = 0;
  std::function<void()> body;
};

/// Thread-safe FIFO of recursive tasks for one memory node (or one leaf
/// compute queue in the §V-E organization).
class WorkQueue {
 public:
  explicit WorkQueue(std::string name = "queue") : name_(std::move(name)) {}

  void push(QueueTask task);

  /// Pops the oldest task; returns false when empty.
  bool pop(QueueTask& out);

  /// Pops from the *back* — the owner end in the work-stealing
  /// organization of Fig 10 (owners pop the tail, thieves take the head).
  bool pop_back(QueueTask& out);

  std::size_t size() const;
  bool empty() const { return size() == 0; }
  const std::string& name() const { return name_; }

  /// Total tasks ever enqueued (progress tracking, §V-E).
  std::uint64_t enqueued_total() const;

  /// Mirrors pushes/pops into "queue.<name>.pushes" / ".pops". The
  /// registry must outlive this queue. pop_back counts as a pop.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  mutable std::mutex mutex_;
  std::deque<QueueTask> tasks_;
  std::string name_;
  std::uint64_t enqueued_total_ = 0;
  obs::Counter* push_counter_ = nullptr;
  obs::Counter* pop_counter_ = nullptr;
};

/// The set of work queues hanging off the topological tree: one or more
/// per node. "Examining the status of a subsystem can be easily
/// accomplished by checking the queue associated with the root of a
/// subtree" (§V-E).
class NodeQueueSet {
 public:
  explicit NodeQueueSet(const topo::TopoTree& tree) : tree_(tree) {}

  /// Creates `count` queues on `node` (idempotent growth).
  void create_queues(topo::NodeId node, std::size_t count);

  /// Attaches queue push/pop telemetry to `registry` — applies to all
  /// existing queues and to queues created afterwards.
  void attach_metrics(obs::MetricsRegistry& registry);

  std::size_t queue_count(topo::NodeId node) const;
  WorkQueue& queue(topo::NodeId node, std::size_t index = 0);

  /// Pending tasks across the subtree rooted at `node` — the §V-E
  /// subsystem-status probe used for load-balancing decisions.
  std::size_t subtree_pending(topo::NodeId node) const;

 private:
  const topo::TopoTree& tree_;
  std::map<topo::NodeId, std::vector<std::unique_ptr<WorkQueue>>> queues_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace northup::sched
