// Chase-Lev lock-free work-stealing deque.
//
// §V-E: "Atomics with the platform-scope and acquire memory ordering are
// used to implement the lock-free stealing [24]". This is the standard
// Chase-Lev structure those GPU work-stealing schemes derive from: the
// owner pushes/pops at the bottom, thieves steal from the top with a CAS.
//
// Single-owner / multi-thief; elements must be trivially copyable (task
// ids / pointers). Fixed power-of-two capacity: push_bottom reports
// failure when full instead of growing, which keeps the hot path free of
// allocation — callers size the deque to the task count up front.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "northup/util/assert.hpp"

namespace northup::sched {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "ChaseLevDeque elements must be trivially copyable");

 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit ChaseLevDeque(std::size_t capacity = 1024) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    buffer_ = std::make_unique<std::atomic<T>[]>(cap);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Owner only. Returns false when the deque is full.
  bool push_bottom(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    if (b - t >= static_cast<std::int64_t>(capacity())) return false;
    buffer_[static_cast<std::size_t>(b) & mask_].store(
        value, std::memory_order_relaxed);
    // Publish the element before making the new bottom visible to thieves.
    bottom_.store(b + 1, std::memory_order_release);
    return true;
  }

  /// Owner only. Pops the most recently pushed element (LIFO).
  bool pop_bottom(T& out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was empty; restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    out = buffer_[static_cast<std::size_t>(b) & mask_].load(
        std::memory_order_relaxed);
    if (t == b) {
      // Last element: race against thieves for it.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return true;
  }

  /// Any thread. Steals the oldest element (FIFO end).
  bool steal_top(T& out) {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return false;
    out = buffer_[static_cast<std::size_t>(t) & mask_].load(
        std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return false;  // lost the race; caller may retry
    }
    return true;
  }

  /// Approximate size; exact only when quiescent.
  std::size_t size_approx() const {
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_approx() const { return size_approx() == 0; }

 private:
  alignas(64) std::atomic<std::int64_t> top_{0};
  alignas(64) std::atomic<std::int64_t> bottom_{0};
  std::size_t mask_ = 0;
  std::unique_ptr<std::atomic<T>[]> buffer_;
};

}  // namespace northup::sched
