// Work-stealing thread pool over Chase-Lev deques.
//
// Used for functional parallel execution of recursive tasks spawned with
// northup_spawn (§III-C: "level i can spawn multiple tasks each processing
// one chunk to one of its children"). Each worker owns a Chase-Lev deque;
// external submissions enter through an injector queue; idle workers steal
// from the top of victims' deques.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "northup/sched/chase_lev.hpp"
#include "northup/sched/work_queue.hpp"

namespace northup::sched {

class WorkStealingPool {
 public:
  /// Starts `num_threads` workers (at least 1).
  explicit WorkStealingPool(std::size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Submits a task. Worker threads push onto their own deque (cheap,
  /// LIFO — good locality for recursive decomposition); other threads go
  /// through the injector queue.
  void submit(std::function<void()> fn);

  /// Blocks until every submitted task (including tasks submitted by
  /// running tasks) has finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

  /// Number of successful steals (scheduling diagnostics).
  std::uint64_t steal_count() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    ChaseLevDeque<std::function<void()>*> deque{4096};
    std::thread thread;
  };

  void worker_loop(std::size_t index);
  std::function<void()>* try_acquire(std::size_t self);
  void run_task(std::function<void()>* task);

  std::vector<std::unique_ptr<Worker>> workers_;
  WorkQueue injector_{"injector"};

  std::mutex idle_mutex_;
  std::condition_variable work_cv_;    ///< workers sleep here when starved
  std::condition_variable idle_cv_;    ///< wait_idle sleeps here
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<bool> stop_{false};

  static thread_local std::size_t tls_worker_index_;
  static thread_local WorkStealingPool* tls_pool_;
};

}  // namespace northup::sched
