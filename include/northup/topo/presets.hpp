// Preset topologies matching the paper's evaluated systems (§V-A) plus a
// deeper NVM hierarchy (§V-D outlook) and the asymmetric example of Fig 2.
//
// Capacities default to the scaled-down proportions documented in
// DESIGN.md (same root : staging : device ratios as the paper's 16 GB /
// 2 GB / 1 GB testbed, shrunk with the functional input sizes).
#pragma once

#include <cstdint>

#include "northup/topo/tree.hpp"

namespace northup::topo {

/// Knobs shared by all presets. Zero-valued fields take preset defaults.
struct PresetOptions {
  std::uint64_t root_capacity = 8ULL << 30;     ///< file storage (8 GiB)
  std::uint64_t staging_capacity = 64ULL << 20; ///< DRAM staging buffer
  std::uint64_t device_capacity = 16ULL << 20;  ///< GPU device memory
  sim::BandwidthModel storage_model{};          ///< default: by kind
  /// Scales processor *FLOP/s* (not memory bandwidth). Benchmarks running
  /// reduced-size inputs set this to block_dim_ours / block_dim_paper so
  /// compute-bound kernels keep the paper's compute-to-I/O ratio; see
  /// DESIGN.md §5. Memory-bound kernels are scale-invariant and unaffected.
  double proc_flops_scale = 1.0;
};

/// APU + SSD/HDD, two Northup-managed levels (§V-B):
/// level 0 = file storage (root), level 1 = DRAM staging with the APU's
/// CPU and integrated GPU both attached to the leaf (shared memory).
TopoTree apu_two_level(mem::StorageKind file_kind = mem::StorageKind::Ssd,
                       const PresetOptions& options = {});

/// Discrete-GPU system, three levels (§V-C, Fig 8):
/// level 0 = file storage, level 1 = DRAM (CPU attached to this non-leaf
/// node, per §III-B), level 2 = GPU device memory with the discrete GPU.
TopoTree dgpu_three_level(mem::StorageKind file_kind = mem::StorageKind::Ssd,
                          const PresetOptions& options = {});

/// Deep hierarchy for the emerging-memory discussion (§V-D, §VI):
/// HDD root -> NVM tier -> DRAM -> GPU device memory.
TopoTree deep_four_level(const PresetOptions& options = {});

/// NVM as per-node slower memory (§VI, "Northup for HPC"): the root is a
/// byte-addressable NVM tier instead of file storage, with the APU leaf
/// below — the configuration the paper argues becomes attractive once
/// NVM bandwidth eclipses storage.
TopoTree nvm_root_two_level(const PresetOptions& options = {});

/// The asymmetric tree of Fig 2: a root with two subtrees of different
/// depth and different leaf processors. Used by scheduling/load-balance
/// tests; capacities are small and uniform.
TopoTree asymmetric_fig2();

/// Default APU processor pair (CPU + integrated GPU) used by the presets.
/// `flops_scale` scales sustained FLOP/s (see PresetOptions).
ProcessorInfo preset_cpu(double flops_scale = 1.0);
ProcessorInfo preset_apu_gpu(double flops_scale = 1.0);
ProcessorInfo preset_dgpu(double flops_scale = 1.0);

}  // namespace northup::topo
