// Text-format topology configuration.
//
// "The Northup tree can be maintained by system software or constructed by
//  the runtime library at program initialization" (§III-B). This parser is
// the "maintained by system software" path: a machine description file is
// parsed into a TopoTree at startup, so applications stay topology-free.
//
// Format (one directive per line, '#' starts a comment):
//
//   node <name> [parent=<name>] kind=<dram|nvm|ssd|hdd|device|scratchpad>
//        cap=<size> [read=<bytes/s>] [write=<bytes/s>] [latency=<seconds>]
//   proc <name> node=<name> type=<cpu|gpu|fpga> [gflops=<num>]
//        [membw=<bytes/s>] [cus=<int>] [llc=<size>] [localmem=<size>]
//
// Sizes accept binary suffixes ("2G", "512M"). The first node directive
// (no parent=) becomes the root. Omitted bandwidths default to the model
// preset for the node's kind.
#pragma once

#include <string>
#include <string_view>

#include "northup/topo/tree.hpp"

namespace northup::topo {

/// Parses a topology description; throws util::TopologyError (with line
/// numbers) on malformed input. The returned tree is validate()d.
TopoTree parse_config(std::string_view text);

/// Reads and parses a topology file.
TopoTree load_config_file(const std::string& path);

/// Serializes a tree back to the config format (round-trips with
/// parse_config up to formatting).
std::string to_config(const TopoTree& tree);

}  // namespace northup::topo
