// The Northup topological tree (§III-B, Fig 2, Listing 1).
//
// The whole machine is abstracted as an asymmetric, heterogeneous tree:
// memory/storage nodes are circles, processors are rectangles attached to
// (usually leaf) memory nodes. Levels are numbered the paper's way — the
// slowest storage (the root) is level 0 and faster memories get larger
// numbers. The tree is purely descriptive; the runtime layer instantiates
// a Storage backend per memory node and a simulated processor per
// processor entry.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "northup/memsim/storage.hpp"
#include "northup/sim/models.hpp"

namespace northup::topo {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

/// Listing 1's processor_t. A leaf may carry more than one processor
/// (the APU leaf carries both the CPU and the integrated GPU, §V-E).
enum class ProcessorType { Cpu, Gpu, Fpga };

const char* to_string(ProcessorType type);

struct ProcessorInfo {
  ProcessorType type = ProcessorType::Cpu;
  std::string name;
  sim::RooflineModel model;          ///< roofline cost model
  std::uint64_t llc_bytes = 0;       ///< Listing 1's LLC_size
  int compute_units = 1;             ///< CUs for a GPU, cores for a CPU
  std::uint64_t local_mem_bytes = 0; ///< per-CU scratchpad (GPU local memory)
};

/// Listing 1's memory_t.
struct MemoryInfo {
  mem::StorageKind storage_type = mem::StorageKind::Dram;
  std::uint64_t capacity = 0;
  sim::BandwidthModel model;
  int physical_id = 0;
};

/// One tree node: memory info, parentage, attached processors.
struct Node {
  std::string name;
  MemoryInfo memory;
  NodeId parent = kInvalidNode;
  std::vector<NodeId> children;
  std::vector<ProcessorInfo> processors;
  int level = 0;
};

/// The asymmetric topological tree, with the query API of §III-B:
/// fetch_node_type(), get_parent(), get_children_list(), get_level(),
/// get_max_treelevel(), plus capacity introspection for chunk sizing.
class TopoTree {
 public:
  /// Creates the root (level 0, the slowest storage).
  NodeId add_root(std::string name, MemoryInfo memory);

  /// Adds a child memory node one level below `parent`.
  NodeId add_child(NodeId parent, std::string name, MemoryInfo memory);

  /// Attaches a processor. Usually to a leaf; the CPU of a discrete-GPU
  /// system legally attaches to the non-leaf DRAM node (§III-B).
  void attach_processor(NodeId node, ProcessorInfo processor);

  // --- Queries (paper API surface). ---
  NodeId root() const;
  NodeId get_parent(NodeId node) const;
  const std::vector<NodeId>& get_children_list(NodeId node) const;
  int get_level(NodeId node) const;
  /// Deepest level index present anywhere in the tree.
  int get_max_treelevel() const;
  bool is_leaf(NodeId node) const;
  mem::StorageKind fetch_node_type(NodeId node) const;

  const Node& node(NodeId id) const;
  const MemoryInfo& memory(NodeId id) const;
  const std::vector<ProcessorInfo>& processors(NodeId id) const;
  NodeId find(const std::string& name) const;  ///< kInvalidNode if absent

  std::size_t node_count() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  std::vector<NodeId> leaves() const;
  /// All node ids in depth-first preorder from the root.
  std::vector<NodeId> preorder() const;

  /// Human-readable topology dump ("Northup can output the topology",
  /// §III-E): one line per node with kind, capacity, and processors.
  std::string dump() const;

  /// Structural sanity checks: single root, consistent levels,
  /// acyclic parentage, positive capacities. Throws TopologyError.
  void validate() const;

 private:
  const Node& checked(NodeId id) const;

  std::vector<Node> nodes_;
};

}  // namespace northup::topo
