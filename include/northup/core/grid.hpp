// Generic Listing-3 driver: the paper's recursive algorithm template as a
// reusable operator.
//
// Listing 3's myfunction() — check for leaf, else decompose into
// get_x() x get_y() chunks sized to the child capacity, setup_buffer /
// data_down / northup_spawn / data_up per chunk — is the same for every
// tile-local computation. grid_map() packages it: given a 2-D dataset on
// the current node and a leaf kernel, it recursively maps the kernel over
// every chunk through arbitrarily many tree levels. Applications with
// cross-chunk coupling (stencil halos, GEMM reductions) use the raw
// ExecContext API instead, as §IV does.
#pragma once

#include <cstdint>
#include <functional>

#include "northup/core/chunking.hpp"
#include "northup/data/view.hpp"
#include "northup/core/runtime.hpp"

namespace northup::core {

/// Description of a 2-D dataset being mapped.
struct GridJob {
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t elem_size = 0;
  double capacity_safety = 0.85;
};

/// Leaf computation: both chunk buffers live on the leaf node and hold a
/// dense row-major `chunk_rows x chunk_cols` image of the chunk.
using GridLeafFn =
    std::function<void(ExecContext& ctx, data::Buffer& in, data::Buffer& out,
                       std::uint64_t chunk_rows, std::uint64_t chunk_cols)>;

/// Applies `leaf` to every element-aligned chunk of the dataset viewed by
/// `in`/`out` on `ctx`'s node, recursing level by level until the leaf.
/// The output view receives the transformed image with the original
/// layout. Views must describe `job.rows x job.cols` elements.
void grid_map(ExecContext& ctx, const GridJob& job, const data::MatView& in,
              const data::MatView& out, const GridLeafFn& leaf);

/// Convenience entry point: whole buffers (dense row-major) at `ctx`.
void grid_map(ExecContext& ctx, const GridJob& job, data::Buffer& in,
              data::Buffer& out, const GridLeafFn& leaf);

}  // namespace northup::core
