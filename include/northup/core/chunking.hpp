// Capacity-driven chunk planning (§III-C).
//
// "The number of chunks depends on the current available capacity of
//  level i+1 and size of the data structure." These helpers compute
// decompositions that respect a child node's free space, with a safety
// margin for the runtime's own staging needs.
#pragma once

#include <cstdint>

#include "northup/util/assert.hpp"

namespace northup::core {

/// Smallest number of equal chunks such that one chunk (x `copies`
/// simultaneous buffers) fits in `child_available * safety` bytes.
std::uint64_t choose_chunk_count(std::uint64_t total_bytes,
                                 std::uint64_t child_available,
                                 std::uint64_t copies = 1,
                                 double safety = 0.9);

/// A 2-D decomposition: the grid of Listing 2/3's (get_x(), get_y()).
struct GridDims {
  std::uint64_t x = 1;  ///< chunks along rows
  std::uint64_t y = 1;  ///< chunks along columns

  std::uint64_t count() const { return x * y; }
};

/// Picks a near-square (x, y) grid over a rows x cols matrix of
/// `elem_bytes` elements such that one chunk times `buffers_per_chunk`
/// fits in the child's available capacity. Splits the longer chunk
/// dimension first, so chunks stay close to square (regular blocks give
/// better I/O, §V-B).
GridDims choose_grid(std::uint64_t rows, std::uint64_t cols,
                     std::uint64_t elem_bytes,
                     std::uint64_t buffers_per_chunk,
                     std::uint64_t child_available, double safety = 0.9);

/// Ceiling division helper used throughout the decompositions.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace northup::core
