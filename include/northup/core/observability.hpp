// Command-line plumbing for the observability artifacts.
//
// Every example and benchmark harness accepts the same flag set:
//   --trace-out=<file>     Chrome trace-event JSON of the EventSim graph
//   --metrics-out=<file>   MetricsRegistry dump (counters + gauges)
//   --eventlog-out=<file>  flight-recorder .nulog (see obs::EventLog;
//                          feed it to tools/northup-analyze)
//   --prom-out=<file>      Prometheus text exposition of the registry
// dump_observability() reads them off an already-parsed Flags object and
// writes whichever artifacts were requested, so harnesses stay one line.
#pragma once

#include <string>

#include "northup/core/runtime.hpp"
#include "northup/util/flags.hpp"

namespace northup::core {

/// Writes the artifacts requested via --trace-out / --metrics-out /
/// --eventlog-out / --prom-out (no-op when none is present). Harnesses that
/// run several Runtimes pass a distinct `tag` per run; it is spliced in
/// before the file extension ("out.json" + "ssd" -> "out.ssd.json") so
/// successive dumps don't overwrite each other.
void dump_observability(Runtime& rt, const util::Flags& flags,
                        const std::string& tag = "");

}  // namespace northup::core
