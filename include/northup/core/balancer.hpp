// Multi-branch scheduling helpers.
//
// §III-C: "Alternatively, level i can spawn multiple tasks each
// processing one chunk to one of its children at level i+1 (e.g.,
// multiple tree branches)." and §V-E: "Northup's topological tree
// structure is able to naturally support dynamic load balancing when tree
// nodes store information such as on-going tasks at different subtrees...
// examining the status of a subsystem can be easily accomplished by
// checking the queue that associated with the root of a subtree."
//
// SubtreeBalancer picks, for each chunk, the child branch with the least
// pending work (per the subtree's work queues), breaking ties by free
// capacity — so an asymmetric tree (Fig 2) keeps all branches busy.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "northup/core/runtime.hpp"

namespace northup::core {

/// Chooses target children for chunk spawns at a multi-child node.
class SubtreeBalancer {
 public:
  explicit SubtreeBalancer(Runtime& rt) : rt_(rt) {}

  /// The child of `node` with the least pending subtree work; ties break
  /// toward the most free capacity, then the lowest node id. Throws if
  /// `node` has no children.
  topo::NodeId pick_child(topo::NodeId node);

  /// Spawns `chunk_count` recursive tasks from `ctx`, each directed at
  /// the branch pick_child() selects at enqueue time. `body(child_ctx,
  /// chunk_index)` is the per-chunk recursive function. Each dispatch is
  /// recorded in the child's work queue, so later picks see earlier load.
  void balanced_spawn(
      ExecContext& ctx, std::uint64_t chunk_count,
      const std::function<void(ExecContext&, std::uint64_t)>& body);

  /// Speed-aware variant (LPT-style greedy): each chunk goes to the
  /// child minimizing (assigned work + chunk work) / branch speed, so a
  /// branch ending in a slow CPU leaf receives proportionally fewer
  /// chunks instead of an even share. `speeds` maps each child of the
  /// current node to work-units-per-second (see subtree_speed()).
  void balanced_spawn_weighted(
      ExecContext& ctx, std::uint64_t chunk_count, double work_per_chunk,
      const std::map<topo::NodeId, double>& speeds,
      const std::function<void(ExecContext&, std::uint64_t)>& body);

  /// How many chunks each node received from balanced_spawn calls.
  const std::map<topo::NodeId, std::uint64_t>& dispatch_counts() const {
    return dispatch_counts_;
  }

 private:
  Runtime& rt_;
  std::map<topo::NodeId, std::uint64_t> dispatch_counts_;
  std::map<topo::NodeId, double> assigned_work_;
};

/// Estimated execution speed of the branch rooted at `node`: the inverse
/// kernel time of `cost` on the first processor found on the branch's
/// first-child path (the §III-E profile would refine this online via
/// AdaptiveMapper; this is the model-derived prior).
double subtree_speed(Runtime& rt, topo::NodeId node,
                     const device::KernelCost& cost);

}  // namespace northup::core
