// Execution-time breakdown — the stacked bars of Figs 7 and 8.
//
// The EventSim tags every task with a phase ("cpu", "gpu", "setup",
// "transfer", "io", "runtime"); this folds the totals into the fixed
// component set the paper reports and computes shares.
#pragma once

#include <map>
#include <string>

#include "northup/sim/event_sim.hpp"

namespace northup::core {

struct Breakdown {
  double cpu = 0.0;       ///< CPU kernel execution
  double gpu = 0.0;       ///< GPU kernel execution
  double setup = 0.0;     ///< buffer setup (alloc/release/driver calls)
  double transfer = 0.0;  ///< DMA / memcpy between memories (OpenCL transfers)
  double io = 0.0;        ///< file storage reads/writes
  double runtime = 0.0;   ///< Northup bookkeeping (queues, tree lookups)
  double makespan = 0.0;  ///< end-to-end virtual time (with overlap)

  /// Collects the breakdown from a simulated trace.
  static Breakdown from(const sim::EventSim& sim);

  /// Sum of all components (>= makespan when phases overlapped).
  double component_total() const;

  /// Fraction of component_total() per component — the paper's
  /// percentage breakdown presentation.
  std::map<std::string, double> shares() const;

  /// "runtime" share of the total — the §V-B <1% overhead metric.
  double runtime_overhead_fraction() const;

  std::string to_string() const;
};

}  // namespace northup::core
