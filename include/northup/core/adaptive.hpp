// Profile-guided task-processor mapping (§III-E).
//
// "By profiling the execution of earlier scheduled chunks, the system can
//  provide useful information to subsequent scheduling and task-processor
//  mapping."
//
// AdaptiveMapper keeps an exponentially weighted throughput estimate per
// processor (work units per simulated second, fed from LaunchResults) and
// answers "which processor should run the next chunk" — preferring the
// empirically fastest, but probing unmeasured processors first so every
// device gets profiled.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "northup/device/processor.hpp"

namespace northup::core {

class AdaptiveMapper {
 public:
  /// `alpha` is the EWMA weight of the newest observation in (0, 1].
  explicit AdaptiveMapper(double alpha = 0.3);

  /// Records that `proc` completed `work_units` in `seconds` of virtual
  /// time (usually LaunchResult::sim_seconds).
  void observe(const device::Processor* proc, double work_units,
               double seconds);

  /// Picks from `candidates`: an unprofiled processor if any remain
  /// (round-robin probing), else the highest-throughput one.
  device::Processor* pick(const std::vector<device::Processor*>& candidates);

  /// Current throughput estimate (0 when unprofiled).
  double throughput(const device::Processor* proc) const;

  std::size_t observations(const device::Processor* proc) const;

 private:
  struct Entry {
    double throughput = 0.0;
    std::size_t count = 0;
  };

  double alpha_;
  std::map<const device::Processor*, Entry> entries_;
};

}  // namespace northup::core
