// Schedule analysis over the recorded task graph.
//
// The paper leaves "unfolding the recursive tree into a dependency graph
// to exploit more parallelism" as future work (§III-C); the EventSim trace
// *is* that unfolded graph. This module analyzes it: per-resource
// utilization, the critical path with per-phase attribution, and the
// theoretical speedup still on the table — the diagnostics a programmer
// would use to decide where to add queues, streams, or faster hardware.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "northup/sim/event_sim.hpp"

namespace northup::core {

/// Utilization of one engine over the schedule's makespan.
struct ResourceUtilization {
  std::string name;
  double busy_seconds = 0.0;
  double utilization = 0.0;  ///< busy / makespan
};

/// Aggregate analysis of a recorded schedule.
struct ScheduleReport {
  double makespan = 0.0;
  double serialized_total = 0.0;      ///< sum of all task durations
  double parallelism = 0.0;           ///< serialized_total / makespan
  std::vector<ResourceUtilization> resources;  ///< sorted, busiest first

  /// Critical-path time attributed to each phase key: which kind of work
  /// actually gates the end-to-end time.
  std::map<std::string, double> critical_path_by_phase;
  std::size_t critical_path_length = 0;

  /// Builds the report from a simulated trace.
  static ScheduleReport from(const sim::EventSim& sim);

  /// Multi-line human-readable rendering.
  std::string to_string() const;
};

}  // namespace northup::core
