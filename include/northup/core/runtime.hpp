// The Northup runtime (§III).
//
// Owns the topological tree, one Storage backend per memory node, one
// simulated Processor per attached processor, the per-node work queues,
// and the EventSim that accumulates the virtual-time execution trace.
// "The Northup tree can be maintained by system software or constructed by
//  the runtime library at program initialization" (§III-B) — construction
// here happens at Runtime creation from a TopoTree (built in code, from a
// preset, or parsed from a config file).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "northup/cache/cache_manager.hpp"
#include "northup/data/data_manager.hpp"
#include "northup/data/scoped_buffer.hpp"
#include "northup/device/processor.hpp"
#include "northup/exec/task_graph.hpp"
#include "northup/io/async_pool.hpp"
#include "northup/io/posix_file.hpp"
#include "northup/obs/event_log.hpp"
#include "northup/obs/metrics.hpp"
#include "northup/obs/trace_writer.hpp"
#include "northup/resil/resilience.hpp"
#include "northup/sched/work_queue.hpp"
#include "northup/sim/event_sim.hpp"
#include "northup/topo/tree.hpp"
#include "northup/util/timer.hpp"

namespace northup::plan {
class AutoTuner;
}  // namespace northup::plan

namespace northup::core {

class ExecContext;

struct RuntimeOptions {
  bool enable_sim = true;        ///< attach an EventSim for virtual timing
  std::string file_dir;          ///< dir for file-backed nodes ("" = temp)
  bool direct_io = false;        ///< O_DIRECT|O_SYNC on file storages
  bool trace_io = false;         ///< record IoRecords on file storages (§V-D)
  /// Modeled cost of one runtime bookkeeping step (tree lookup + queue
  /// push/pop around a spawn). Charged with phase "runtime" so the <1%
  /// overhead claim of §V-B is measurable.
  double spawn_overhead_s = 2e-6;
  /// When > 0, leaf kernels execute their workgroups on a work-stealing
  /// pool with this many threads (functional parallelism on the host;
  /// virtual timing is unchanged). 0 = serial, deterministic default.
  std::size_t parallel_leaf_threads = 0;
  /// When > 0, each run()'s task DAG executes on a dedicated
  /// work-stealing pool with this many threads: independent moves,
  /// kernel launches, and cache ops overlap on the wall clock, which is
  /// what lets a planner pipeline chunk k+1's download under chunk k's
  /// compute. 0 = inline mode: every DAG node runs synchronously at
  /// submission, in program order — the deterministic legacy fork-join
  /// behavior (results are bit-identical to the blocking API).
  std::size_t pipeline_threads = 0;
  /// Pace file-backed storage on the wall clock: every pread/pwrite
  /// sleeps out whatever remains of its modeled bandwidth cost
  /// (mem::Storage::set_paced), so the flight recorder measures the
  /// *simulated* storage tier instead of the host filesystem. This is
  /// what makes transfer/compute overlap physically observable — the
  /// pipelining benchmarks enable it so the measured critical path of a
  /// pipelined run can actually shrink below the fork-join baseline.
  /// Virtual timing (EventSim) is unchanged. Off by default: functional
  /// tests should run at host speed.
  bool paced_storage = false;
  /// Back file-backed nodes (Ssd/Hdd) with mem::MmapStorage instead of
  /// the copying FileStorage: allocations become MAP_SHARED mappings, the
  /// data plane's staging copies collapse into zero-copy views/memcpys,
  /// and planners can take host_view() of file-resident buffers. Modeled
  /// costs (and paced_storage pacing) are charged identically through
  /// Storage::note_access, so virtual timing and the §V-D projection are
  /// unchanged — only the real transport differs.
  bool mmap_storage = false;
  /// When > 0, an io::AsyncIoPool with this many workers is attached to
  /// every copying FileStorage node: large pread/pwrite calls are striped
  /// across the pool (or submitted as one io_uring batch where the
  /// kernel allows it) instead of draining one syscall on the calling
  /// exec worker. Ignored for mmap_storage nodes (no syscalls to stripe).
  std::size_t io_threads = 0;
  /// Attach a cache::CacheManager: per-node BufferPools with LRU eviction
  /// plus content-keyed ShardCaches behind move_data_down_cached. Off means
  /// the cached download API is unavailable (has_shard_cache == false) and
  /// allocations never evict.
  bool enable_shard_cache = true;
  /// Modeled cost of serving a shard-cache hit (0 = free lookup).
  double cache_hit_time_s = 0.0;
  /// Chunk-granular fault tolerance: retry/backoff on failed transfers,
  /// optional end-to-end checksums, per-node circuit breakers. The retry
  /// loop only engages when an operation fails, so fault-free runs are
  /// untouched by the defaults.
  resil::ResilOptions resilience = {};
  /// Applied to every storage backend the runtime binds — the seam for
  /// fault injection (wrap the built backend in a
  /// mem::FaultInjectingStorage under a chaos plan) and other decorators.
  /// Returning the input unchanged is fine; returning null is an error.
  std::function<std::unique_ptr<mem::Storage>(
      topo::NodeId, const topo::TopoTree&, std::unique_ptr<mem::Storage>)>
      storage_decorator = {};
  /// Always-on wall-clock flight recorder (obs::EventLog): every real
  /// move, alloc, cache hit/miss, retry, breaker transition, kernel
  /// launch, and spawn span is recorded with wall-clock timestamps and
  /// causal span ids. Bounded memory (see event_log_capacity); the <1%
  /// §V-B overhead bound is checked by bench/overhead_runtime.
  bool enable_event_log = true;
  /// Per-thread ring capacity of the owned EventLog, in events (64 B
  /// each). The default (65536) holds ~4 MiB per recording thread.
  std::size_t event_log_capacity = std::size_t{1} << 16;
  /// Record into an external EventLog instead of owning one (the job
  /// service points per-job runtimes at the machine-wide log so one
  /// recording spans all tenants). Must outlive the runtime. When set,
  /// enable_event_log is ignored.
  obs::EventLog* external_event_log = nullptr;
  /// Trace-calibrated self-tuning (ISSUE 8): when set, the planners take
  /// chunk sizes, execution mode (serial fat chunks vs window-2 double
  /// buffering), CSR workgroup cutoffs, and child ranking from this
  /// plan::AutoTuner instead of their hand-configured defaults,
  /// re-querying it between tree levels (a breaker-degraded node's
  /// shrunken budget and observed bandwidths flow into the re-plan).
  /// Must outlive the runtime; the core layer never dereferences it —
  /// only planners (northup::algos) do.
  const plan::AutoTuner* auto_tune = nullptr;
};

/// Instantiated system: tree + storages + processors + queues + sim.
class Runtime {
 public:
  explicit Runtime(topo::TopoTree tree, RuntimeOptions options = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const topo::TopoTree& tree() const { return tree_; }
  data::DataManager& dm() { return *dm_; }
  const data::DataManager& dm() const { return *dm_; }
  sim::EventSim* event_sim() { return sim_ ? sim_.get() : nullptr; }
  sched::NodeQueueSet& queues() { return *queues_; }

  /// The fault-tolerance layer: chunk retry policy, end-to-end checksum
  /// switch, and the per-node health/breaker state planners consult.
  resil::ResilienceManager& resilience() { return *resil_; }

  /// The capacity/caching layer, or nullptr when enable_shard_cache is
  /// false. Algorithms normally stay on the DataManager cached-download
  /// API; this accessor is for stats and explicit flushes.
  cache::CacheManager* cache_manager() { return cache_.get(); }

  /// Capacity-accounting pool of `node` (nullptr without a cache manager).
  cache::BufferPool* pool_at(topo::NodeId node) {
    return cache_ ? cache_->pool(node) : nullptr;
  }

  /// Shard cache of `node` (nullptr at the root or without a manager).
  cache::ShardCache* shard_cache_at(topo::NodeId node) {
    return cache_ ? cache_->shard_cache(node) : nullptr;
  }
  const RuntimeOptions& options() const { return options_; }

  /// Always-on telemetry: every DataManager move/alloc, storage access,
  /// queue push/pop, and recursive spawn is counted here.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// The wall-clock flight recorder, or nullptr when disabled. Owned by
  /// this runtime unless RuntimeOptions::external_event_log was set.
  obs::EventLog* event_log() { return elog_; }

  /// Binary flush of the flight recorder to `path` (.nulog — the input
  /// of tools/northup-analyze). With the recorder disabled an empty log
  /// is written so downstream tooling always has a file.
  void write_event_log(const std::string& path);

  /// Dumps the metrics registry in Prometheus text-exposition format at
  /// `path`, after folding in the same point-in-time gauges as
  /// write_metrics_json.
  void write_prometheus(const std::string& path);

  /// Chrome-trace track layout for this runtime's EventSim: one pid per
  /// tree node (memory engine tid 0, attached processors tid 1..n).
  obs::TraceLayout trace_layout();

  /// Serializes the EventSim task graph to Chrome trace-event JSON at
  /// `path` (openable in Perfetto). With the sim disabled the file holds
  /// an empty event array.
  void write_chrome_trace(const std::string& path);

  /// Dumps the metrics registry as JSON at `path`, after folding in
  /// point-in-time gauges (sim makespan, per-phase totals, spawn count,
  /// leaf-pool steals, bookkeeping wall time).
  void write_metrics_json(const std::string& path);

  /// Processors attached to `node` (empty for pure memory nodes).
  std::vector<device::Processor*> processors_at(topo::NodeId node);

  /// First processor of the given type at `node`, or nullptr.
  device::Processor* processor_at(topo::NodeId node,
                                  topo::ProcessorType type);

  /// First processor of the given type anywhere in the subtree of `node`
  /// (the Listing 3 get_device() used at leaves), or nullptr.
  device::Processor* find_processor(topo::ProcessorType type);

  /// Runs a recursive Northup program from the root context.
  void run(const std::function<void(ExecContext&)>& fn);

  /// Runs from an arbitrary node's context — used by in-memory baselines,
  /// which start with the working set already resident at a DRAM node
  /// instead of at the storage root (§V-B).
  void run_from(topo::NodeId node, const std::function<void(ExecContext&)>& fn);

  /// The task DAG of the run currently executing (null outside run()).
  /// Planners normally reach it through ExecContext::graph().
  exec::TaskGraph* current_graph() { return graph_; }

  /// The pool behind pipelined runs, or null when pipeline_threads == 0.
  sched::WorkStealingPool* exec_pool() { return exec_pool_.get(); }

  /// The async file-I/O workers behind copying file-backed nodes, or
  /// null when io_threads == 0.
  io::AsyncIoPool* io_pool() { return io_pool_.get(); }

  /// Virtual makespan accumulated so far (0 when sim is disabled).
  double makespan() const;

  /// Total recursive spawns executed (runtime-overhead accounting, §V-B).
  std::uint64_t spawn_count() const {
    return spawn_count_.load(std::memory_order_relaxed);
  }

  /// Wall-clock seconds this process actually spent inside runtime
  /// bookkeeping (queue ops, tree lookups around spawns).
  double bookkeeping_wall_seconds() const {
    return bookkeeping_.total_seconds();
  }

 private:
  friend class ExecContext;

  void bind_all_storages();
  void create_processors();

  /// Stamps point-in-time gauges (makespan, phase totals, eventlog drop
  /// count, ...) before a metrics dump.
  void stamp_gauges();

  topo::TopoTree tree_;
  RuntimeOptions options_;
  obs::MetricsRegistry metrics_;  ///< outlives everything hooked into it
  /// Declared right after metrics_ (destroyed last but for it): every
  /// subsystem below holds a raw pointer into the flight recorder.
  std::unique_ptr<obs::EventLog> elog_owned_;
  obs::EventLog* elog_ = nullptr;
  std::uint32_t elog_runtime_phase_ = 0;  ///< interned "runtime"
  std::uint32_t elog_run_name_ = 0;       ///< interned "run"
  /// Interned "spawn-><node>" span names, indexed by NodeId (hot path).
  std::vector<std::uint32_t> spawn_span_names_;
  obs::Counter* spawn_counter_ = nullptr;
  obs::Gauge* spawn_depth_gauge_ = nullptr;
  std::unique_ptr<sim::EventSim> sim_;
  /// Declared before dm_: FileStorage backends bound into the
  /// DataManager hold a raw pointer to the pool, so it must be destroyed
  /// after them (null when io_threads == 0).
  std::unique_ptr<io::AsyncIoPool> io_pool_;
  /// Declared before dm_: the DataManager holds a raw pointer to it, so
  /// it must be destroyed after the DataManager.
  std::unique_ptr<resil::ResilienceManager> resil_;
  std::unique_ptr<data::DataManager> dm_;
  /// Declared after dm_ so it detaches from the DataManager before the
  /// DataManager itself goes away.
  std::unique_ptr<cache::CacheManager> cache_;
  std::unique_ptr<sched::NodeQueueSet> queues_;
  std::unique_ptr<io::TempDir> temp_dir_;  ///< only when file_dir empty
  std::map<topo::NodeId, std::vector<std::unique_ptr<device::Processor>>>
      processors_;
  std::unique_ptr<sched::WorkStealingPool> leaf_pool_;
  /// Workers behind pipelined runs (null when pipeline_threads == 0);
  /// every run()'s TaskGraph dispatches onto this pool.
  std::unique_ptr<sched::WorkStealingPool> exec_pool_;
  /// The DAG of the run in flight; set/cleared by run_from (runs are not
  /// reentrant). The graph itself lives on run_from's stack.
  exec::TaskGraph* graph_ = nullptr;
  std::mutex spawn_mu_;  ///< serializes spawn bookkeeping (queue + timer)
  std::atomic<std::uint64_t> spawn_count_{0};
  util::AccumulatingTimer bookkeeping_;
};

/// The per-recursion-level execution context — Listing 3's implicit
/// state. Created by Runtime::run at the root; northup_spawn() descends
/// into children.
class ExecContext {
 public:
  Runtime& runtime() { return rt_; }
  data::DataManager& dm() { return rt_.dm(); }

  // --- The paper's query API (§III-B). ---
  topo::NodeId get_cur_treenode() const { return node_; }
  int get_level() const { return rt_.tree().get_level(node_); }
  int get_max_treelevel() const { return rt_.tree().get_max_treelevel(); }
  bool is_leaf() const { return rt_.tree().is_leaf(node_); }
  mem::StorageKind fetch_node_type() const {
    return rt_.tree().fetch_node_type(node_);
  }
  topo::NodeId get_parent() const { return rt_.tree().get_parent(node_); }
  const std::vector<topo::NodeId>& get_children_list() const {
    return rt_.tree().get_children_list(node_);
  }
  topo::NodeId child(std::size_t index = 0) const;

  /// Listing 3's get_device(): processors attached to the current node.
  std::vector<device::Processor*> get_devices() {
    return rt_.processors_at(node_);
  }
  device::Processor* get_device(topo::ProcessorType type) {
    return rt_.processor_at(node_, type);
  }

  /// Free capacity of the current node — drives chunk sizing (§III-C:
  /// "The number of chunks depends on the current available capacity of
  ///  level i+1 and size of the data structure"). Unpinned cache-resident
  /// bytes count as free: the pool evicts them on demand, so a planner
  /// that ignored them would shrink its chunks whenever the cache warmed.
  /// Degraded by the node's health (resil): a recovering node advertises
  /// a fraction of its space so chunks shrink, a quarantined node
  /// advertises zero.
  std::uint64_t available_bytes() const { return available_bytes(node_); }
  std::uint64_t available_bytes(topo::NodeId node) const {
    const data::DataManager& dm = std::as_const(rt_).dm();
    const std::uint64_t raw =
        dm.storage(node).available() + dm.reclaimable_bytes(node);
    const double scale = dm.health_scale(node);
    return scale >= 1.0
               ? raw
               : static_cast<std::uint64_t>(static_cast<double>(raw) * scale);
  }

  /// First child whose circuit breaker admits traffic — the sibling
  /// re-routing hook for programs that catch a failure at one child and
  /// continue on another. Falls back to the first child when every child
  /// is quarantined (the caller will then see the failure directly).
  topo::NodeId healthy_child() const;

  /// Capacity-accounting pool of the current node (nullptr when the
  /// runtime was built with enable_shard_cache = false).
  cache::BufferPool* pool() { return rt_.pool_at(node_); }

  /// Allocates on the current node.
  data::Buffer alloc_here(std::uint64_t size) {
    return rt_.dm().alloc(size, node_);
  }

  /// Recursive descent: runs `fn` with the child's context. The task goes
  /// through the child node's work queue (push + pop), the runtime charges
  /// its bookkeeping cost, and execution is synchronous and deterministic.
  void northup_spawn(topo::NodeId child_node,
                     const std::function<void(ExecContext&)>& fn);

  // --- Asynchronous continuation-DAG API (northup::exec). -----------------
  //
  // Each call adds one node to the run's TaskGraph and returns a future
  // whose task() handle feeds later calls' dependency lists. With
  // RuntimeOptions::pipeline_threads == 0 nodes execute inline at
  // submission (program order, bit-identical to the blocking calls); with
  // a pool, independent nodes overlap — downloads, kernels, and uploads
  // of different chunks pipeline. Node bodies run on worker threads, so
  // anything they reference by pointer/reference (the run lambda's
  // buffers, the runtime) must stay alive until the future completes;
  // Runtime::run joins the whole graph before returning.

  /// This run's task DAG. Only valid inside Runtime::run/run_from.
  exec::TaskGraph& graph();

  /// True when this run's DAG executes on a worker pool
  /// (RuntimeOptions::pipeline_threads > 0), i.e. submitted nodes overlap.
  bool pipelined() const;

  /// Generic DAG node: runs `fn` after `deps` complete.
  exec::Future<exec::Unit> submit(std::function<void()> fn,
                                  std::vector<exec::TaskHandle> deps = {});

  /// Async move_data_down: claims a staging buffer of
  /// spec.dst_offset + spec.size bytes on `dst_node` NOW (capacity
  /// decisions and buffer identity stay deterministic on the submitting
  /// thread — a full child level throws CapacityError here, where the
  /// planner can shrink its chunks), then copies in the DAG node. The
  /// future carries ownership of the staged buffer; a dependent node that
  /// lists task() in its deps may get() it without blocking.
  exec::Future<data::ScopedBuffer> move_down_async(
      const data::Buffer& src, topo::NodeId dst_node, data::CopySpec spec,
      std::vector<exec::TaskHandle> deps = {});

  /// Async content-keyed download (DataManager::move_data_down_cached).
  /// Unlike move_down_async the acquisition runs inside the node — a hit
  /// pins the resident shard, a miss fills it — under the cache lock.
  exec::Future<data::ScopedShard> move_down_cached_async(
      const data::Buffer& src, topo::NodeId child, std::uint64_t size,
      std::uint64_t src_offset = 0, std::vector<exec::TaskHandle> deps = {});

  /// Async move_data_up: takes ownership of the staged source at
  /// submission and releases it the moment the upload lands, so the
  /// staging slot frees exactly when a blocking planner would free it.
  /// `dst` is captured by reference and must outlive the run.
  /// spec.size == 0 means "the whole source buffer".
  exec::Future<exec::Unit> move_up_async(data::Buffer& dst,
                                         data::ScopedBuffer src,
                                         data::CopySpec spec,
                                         std::vector<exec::TaskHandle> deps = {});

  /// Async recursive descent: a DAG node that northup_spawns `fn` onto
  /// `child_node` (same queue bookkeeping and spawn span as the blocking
  /// form). The chunk body runs on a worker thread; blocking DataManager
  /// calls inside it are fine — that is how compute overlaps the
  /// top-level pipeline's moves.
  exec::Future<exec::Unit> run_async(topo::NodeId child_node,
                                     std::function<void(ExecContext&)> fn,
                                     std::vector<exec::TaskHandle> deps = {});

  /// Async kernel launch on `proc` after `deps` (plus any EventSim-level
  /// `sim_deps`, e.g. the ready tasks of buffers the kernel reads).
  exec::Future<exec::Unit> launch_async(device::Processor& proc,
                                        std::string label,
                                        std::uint32_t num_groups,
                                        device::KernelFn kernel,
                                        device::KernelCost cost,
                                        std::vector<sim::TaskId> sim_deps = {},
                                        std::vector<exec::TaskHandle> deps = {});

 private:
  friend class Runtime;
  ExecContext(Runtime& rt, topo::NodeId node) : rt_(rt), node_(node) {}

  Runtime& rt_;
  topo::NodeId node_;
};

}  // namespace northup::core
