// Retry policy of the chunk-granular resilience layer (northup::resil).
//
// Northup's deep-storage nodes sit on the hot path of every recursion
// (§III-D), so a transient I/O fault used to unwind the whole execution
// and the job service could only retry the *entire job attempt*. The
// RetryPolicy instead bounds and paces retries of the individual chunk
// transfer that failed: exponential backoff with seeded jitter, a per-op
// deadline, and a structural transient-vs-permanent classification built
// on util::IoError's errno/transient hints (never on error strings).
#pragma once

#include <cstdint>
#include <exception>

namespace northup::resil {

/// How the resilience layer should react to a failed attempt.
enum class ErrorClass {
  TransientIo,  ///< retry: the environment may recover (flaky read, EINTR)
  Corruption,   ///< retry: re-read/re-write; counted separately
  Permanent,    ///< do not retry: propagate immediately
};

const char* to_string(ErrorClass cls);

/// Classifies a caught exception. util::CorruptionError -> Corruption;
/// util::IoError with transient() -> TransientIo; everything else
/// (permanent-errno IoError, CapacityError, logic errors) -> Permanent.
ErrorClass classify(const std::exception_ptr& error);

/// Bounds and paces the retries of one data-plane operation.
struct RetryPolicy {
  /// Total tries for one operation (1 = no retries).
  std::uint32_t max_attempts = 4;
  /// Sleep before retry k is base * multiplier^(k-1), capped at max.
  double base_backoff_s = 200e-6;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 20e-3;
  /// Each sleep is scaled by a seeded uniform factor in
  /// [1 - jitter, 1 + jitter] to de-correlate concurrent retriers.
  double jitter = 0.25;
  /// Wall-clock budget for one operation including its backoff sleeps
  /// (0 = unbounded). Sleeps are clamped so they never overrun it.
  double op_deadline_s = 0.0;

  bool enabled() const { return max_attempts > 1; }

  /// Backoff before retry `attempt` (the attempt that just failed,
  /// 1-based), before jitter.
  double backoff_for(std::uint32_t attempt) const;
};

}  // namespace northup::resil
