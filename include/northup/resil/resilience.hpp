// ResilienceManager — the resil subsystem's front door, owned by the
// core::Runtime and consulted by the DataManager on every data-plane
// operation.
//
// Responsibilities:
//   * run_op(): execute one chunk transfer with bounded retries,
//     exponential backoff (seeded jitter), per-op + external deadlines,
//     and an abort hook (job cancellation interrupts backoff sleeps).
//   * attribute each outcome to the storage nodes it touched and drive
//     their NodeHealth circuit breakers (quarantine / probe / restore).
//   * expose breaker state and capacity scaling to planners
//     (ExecContext::available_bytes, healthy_child).
//   * observability: resil.retries.* / resil.corruption.* /
//     resil.breaker_state.<node> metrics plus "retry"/"quarantine"
//     trace instants through a hook the DataManager installs.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "northup/obs/event_log.hpp"
#include "northup/obs/metrics.hpp"
#include "northup/resil/node_health.hpp"
#include "northup/resil/retry.hpp"
#include "northup/topo/tree.hpp"
#include "northup/util/rng.hpp"

namespace northup::resil {

/// Configuration of the whole resilience layer (RuntimeOptions carries
/// one of these per runtime).
struct ResilOptions {
  RetryPolicy retry;
  /// End-to-end transfer integrity: checksum chunk transfers at the
  /// source and verify at the destination (see DataManager). Off by
  /// default; bench/ablation_resilience measures the functional cost.
  bool verify_checksums = false;
  HealthOptions health;
  std::uint64_t seed = 0x7e51'11e4'ce5eedULL;  ///< backoff jitter seed
};

class ResilienceManager {
 public:
  ResilienceManager(const topo::TopoTree& tree, ResilOptions options);

  const ResilOptions& options() const { return options_; }
  bool verify_checksums() const { return options_.verify_checksums; }

  /// Metrics sink (nullptr detaches). Must outlive the manager.
  void attach_metrics(obs::MetricsRegistry* registry);

  /// Trace hook for instant events: (label, node). The DataManager maps
  /// the node to its EventSim resource and emits a zero-duration
  /// "resil"-phase task (rendered as an instant by the TraceWriter).
  using EventHook = std::function<void(const std::string&, topo::NodeId)>;
  void set_event_hook(EventHook hook) { event_hook_ = std::move(hook); }

  /// Wall-clock flight recorder (nullptr detaches): every retry becomes a
  /// kRetry event (aux 1 = corruption) and every breaker transition a
  /// kBreaker event (aux = new BreakerState) under the calling thread's
  /// current span. Must outlive the manager.
  void set_event_log(obs::EventLog* log) { elog_ = log; }

  /// Abort predicate checked between attempts and during backoff sleeps
  /// (the job service wires job cancellation here). When it fires, the
  /// op's original error is rethrown without further retries.
  void set_abort_check(std::function<bool()> check) {
    abort_check_ = std::move(check);
  }

  /// External absolute deadline (e.g. the job's). Backoff sleeps are
  /// clamped so they never overrun it; once it passes, retrying stops.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
  }
  void clear_deadline() { deadline_.reset(); }

  /// Sleep override for tests (seconds). Default sleeps in small slices,
  /// re-checking the abort predicate each slice.
  void set_sleeper(std::function<void(double)> sleeper) {
    sleeper_ = std::move(sleeper);
  }

  /// Runs `op` (the full functional transfer, including checksum
  /// verification) with the retry policy. Outcomes are recorded against
  /// `src` and `dst` (pass the same node twice for single-sided ops);
  /// failures carrying a storage origin are attributed to that node
  /// alone. Rethrows the final error when attempts, deadline, or the
  /// abort hook end the retry loop.
  ///
  /// Backoff: called from a pool-backed exec::TaskGraph node (and with no
  /// custom sleeper), a backoff does not sleep the worker — the loop
  /// parks its attempt count in the node's resume state and throws
  /// exec::BackoffYield, so the graph re-arms the node on a timer and the
  /// worker runs other tasks meanwhile. Everywhere else (legacy inline
  /// runs, callers outside a graph) it sleeps in place as before.
  void run_op(topo::NodeId src, topo::NodeId dst, const std::string& label,
              const std::function<void()>& op);

  // --- Health / breaker queries (planner surface). ---

  NodeHealth& health(topo::NodeId node);
  BreakerState breaker_state(topo::NodeId node) {
    return health(node).state();
  }
  /// Planner capacity multiplier of `node` (1.0 when fully healthy).
  double capacity_scale(topo::NodeId node) {
    return health(node).capacity_scale();
  }

  std::uint64_t retries() const { return retries_; }
  std::uint64_t corruption_detected() const { return corruption_detected_; }

 private:
  obs::Counter* counter(const char* name);
  void emit_instant(const std::string& label, topo::NodeId node);
  /// Resolves an IoError/CorruptionError origin (storage name) to the
  /// node it is bound to; kInvalidNode when unknown.
  topo::NodeId node_of_origin(const std::string& origin) const;
  void record_failure_at(topo::NodeId node);
  void sleep_with_abort(double seconds);
  /// Installs the gauge/trace observer on a node's breaker. Requires mu_.
  NodeHealth& health_locked(topo::NodeId node);

  const topo::TopoTree& tree_;
  ResilOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::EventLog* elog_ = nullptr;
  EventHook event_hook_;
  std::function<bool()> abort_check_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::function<void(double)> sleeper_;

  mutable std::mutex mu_;  ///< guards healths_ creation and rng_
  std::map<topo::NodeId, std::unique_ptr<NodeHealth>> healths_;
  util::Xoshiro256 rng_;

  std::uint64_t retries_ = 0;  ///< total, any class (racy read is fine)
  std::uint64_t corruption_detected_ = 0;
};

}  // namespace northup::resil
