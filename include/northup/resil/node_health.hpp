// Per-tree-node health tracking and circuit breaking (northup::resil).
//
// Every data-plane operation reports its outcome (success + latency, or
// failure) against the storage nodes it touched. A NodeHealth keeps a
// sliding window of those outcomes and runs the classic three-state
// circuit breaker over it:
//
//   Closed    -- healthy; trips to Open when the windowed failure
//                fraction reaches the threshold (with enough samples).
//   Open      -- quarantined; planners route around the node and shrink
//                chunks. After a cooldown the breaker admits probes.
//   Half-Open -- probing; a run of consecutive successes closes the
//                breaker, any failure re-opens it.
//
// This is the "react to observed per-tier behaviour at runtime" posture
// of the online-guidance literature (PAPERS.md) applied to failure
// handling: placement/chunking decisions consult breaker state instead of
// assuming every bound storage node stays serviceable forever.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

namespace northup::resil {

enum class BreakerState { Closed = 0, HalfOpen = 1, Open = 2 };

const char* to_string(BreakerState state);

/// Tuning knobs of one node's breaker.
struct HealthOptions {
  std::size_t window = 16;        ///< sliding window of recent outcomes
  std::size_t min_samples = 4;    ///< no tripping before this many
  double failure_threshold = 0.5; ///< windowed failure fraction that trips
  double open_cooldown_s = 0.05;  ///< Open -> Half-Open after this
  std::uint32_t half_open_probes = 2;  ///< successes needed to close
  /// Capacity scale planners see while the node is Half-Open or its
  /// windowed failure fraction is above half the trip threshold: chunks
  /// shrink, so a recovering node is re-trusted with small transfers
  /// before large ones.
  double degrade_factor = 0.5;
};

/// Sliding error/latency window + circuit breaker for one node.
/// Thread-safe: data-plane workers record outcomes concurrently with
/// planner queries.
class NodeHealth {
 public:
  explicit NodeHealth(HealthOptions options = {});

  /// Observer invoked (outside internal locks) on every state change;
  /// the resilience manager wires this to the breaker gauge and the
  /// quarantine/restore trace instants.
  using StateObserver = std::function<void(BreakerState)>;
  void set_observer(StateObserver observer);

  void record_success(double latency_s);
  void record_failure();

  /// Current state. Performs the Open -> Half-Open cooldown transition
  /// on read, so a quarantined node becomes probeable by simply asking.
  BreakerState state();

  /// False only while Open within its cooldown: the planner must not
  /// route new work at the node. Half-Open admits (probe) traffic.
  bool allow();

  /// Capacity multiplier for chunk planning: 1.0 when Closed and clean,
  /// `degrade_factor` when recovering, 0 when Open.
  double capacity_scale();

  /// Windowed failure fraction (0 when no samples).
  double failure_rate() const;
  /// Mean latency of windowed successful ops (0 when none).
  double mean_latency() const;
  std::uint64_t trips() const;

 private:
  struct Outcome {
    bool ok = false;
    double latency_s = 0.0;
  };

  /// Requires mu_. Returns the observer call to make, if any.
  void transition_locked(BreakerState next);
  double failure_rate_locked() const;

  HealthOptions options_;
  mutable std::mutex mu_;
  std::vector<Outcome> window_;  ///< ring buffer, size options_.window
  std::size_t next_ = 0;         ///< ring cursor
  std::size_t filled_ = 0;
  BreakerState state_ = BreakerState::Closed;
  double open_since_s_ = 0.0;    ///< monotonic seconds at trip time
  std::uint32_t probe_successes_ = 0;
  std::uint64_t trips_ = 0;
  StateObserver observer_;
};

}  // namespace northup::resil
