// Chrome trace-event export of the EventSim task graph.
//
// Every run of the runtime already records a full (resource, duration,
// dependencies) task graph; TraceWriter serializes it to the Chrome
// trace-event JSON format so any run opens directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing:
//
//   * one *process* (pid) per topological-tree node, named after it, so
//     the per-level structure of the machine is the top-level grouping;
//   * one *thread* (tid) per EventSim resource (a node's copy/I-O engine,
//     each processor's compute-unit array), named like the resource;
//   * each task becomes a complete ("X") event with its phase as the
//     category and virtual seconds scaled to trace microseconds;
//   * each dependency edge becomes a flow arrow ("s"/"f" pair), making
//     the copy/compute overlap structure visible and clickable.
//
// The writer only reads the EventSim; the pid/tid layout comes from a
// TraceLayout the caller builds (core::Runtime knows the tree and hands
// one out — see Runtime::write_chrome_trace).
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "northup/sim/event_sim.hpp"

namespace northup::obs {

/// Maps EventSim resources onto Chrome-trace (pid, tid) tracks.
struct TraceLayout {
  struct Track {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
  };

  /// Track per resource. Resources absent from the map are placed in a
  /// synthetic "sim" process with tid = resource id.
  std::map<sim::ResourceId, Track> tracks;

  /// Display name per pid (tree-node name). The synthetic fallback
  /// process takes the first unused pid.
  std::map<std::uint32_t, std::string> process_names;
};

/// Serializes an EventSim task graph to Chrome trace-event JSON.
class TraceWriter {
 public:
  TraceWriter(const sim::EventSim& sim, TraceLayout layout)
      : sim_(sim), layout_(std::move(layout)) {}

  /// Emits {"displayTimeUnit": ..., "traceEvents": [...]} with metadata
  /// events first and all timed events sorted by timestamp.
  void write(std::ostream& os) const;

  std::string to_json() const;

  /// Writes to `path`; throws util::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  const sim::EventSim& sim_;
  TraceLayout layout_;
};

}  // namespace northup::obs
