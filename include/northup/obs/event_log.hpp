// Wall-clock flight recorder (ISSUE 5 tentpole).
//
// PR 1's TraceWriter serializes the *virtual-time* EventSim graph; real
// multi-threaded executions (svc jobs on the work-stealing pool, resil
// retries) were invisible except as aggregate counters. obs::EventLog is
// the always-on counterpart for *measured* runs: a lock-free, per-thread
// ring-buffer recorder with bounded memory, drop counters, and a compact
// binary flush. Every real task, data move, cache hit/miss, retry, and
// breaker transition is stamped with a wall-clock timestamp, a thread id,
// and a causal span id propagated job -> phase -> chunk -> move.
//
// Concurrency model: each thread writes only to its own ring (a plain
// store of the slot followed by a release store of the head index), so
// recording is wait-free and allocation-free on the hot path after the
// first event per thread. snapshot() is intended for quiescent logs —
// call it after the run completes (every tier-1 test does); a snapshot
// taken mid-run sees a consistent prefix of each ring but may miss the
// newest events.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace northup::obs {

/// Causal span identifier. Spans form a tree (job -> phase -> chunk ->
/// move); id 0 means "no span" / root.
using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// Sentinel for "no memory node" in Event::node / Event::node2.
inline constexpr std::uint32_t kNoNode = 0xffffffffu;

enum class EventKind : std::uint8_t {
  kSpanBegin = 0,  ///< span opened; `span` = the new span, `parent` set
  kSpanEnd = 1,    ///< span closed; `span` = the closing span
  kMove = 2,       ///< DataManager move; node -> node2, value = bytes
  kIo = 3,         ///< file-backed leg of a move; aux 0 = read, 1 = write
  kCompute = 4,    ///< processor launch (functional pass); node = device
  kCacheHit = 5,   ///< shard-cache hit; value = bytes served
  kCacheMiss = 6,  ///< shard-cache miss; value = bytes fetched
  kRetry = 7,      ///< resil retry; aux 1 = corruption, 0 = io fault
  kBreaker = 8,    ///< breaker transition; aux = new state (NodeHealth)
  kAlloc = 9,      ///< DataManager::alloc; value = bytes
  kInstant = 10,   ///< generic named point event
};

/// One fixed-size record. 64 bytes, trivially copyable — written to the
/// per-thread ring by value and flushed to disk verbatim.
struct Event {
  std::uint64_t ts_ns = 0;   ///< start, ns since the log's steady epoch
  std::uint64_t dur_ns = 0;  ///< duration (0 for instants)
  SpanId span = kNoSpan;     ///< owning span (the span itself for begin/end)
  SpanId parent = kNoSpan;   ///< parent span (kSpanBegin only)
  std::uint64_t value = 0;   ///< payload (bytes moved/allocated/served)
  std::uint32_t name = 0;    ///< interned string id (see intern())
  std::uint32_t phase = 0;   ///< interned phase label ("io", "cpu", ...)
  std::uint32_t node = kNoNode;   ///< primary tree node (src for moves)
  std::uint32_t node2 = kNoNode;  ///< secondary tree node (dst for moves)
  std::uint32_t tid = 0;          ///< recorder thread index (dense, per log)
  EventKind kind = EventKind::kInstant;
  std::uint8_t aux = 0;  ///< kind-specific detail (see EventKind)
  std::uint8_t pad_[2] = {0, 0};
};
static_assert(sizeof(Event) == 64, "Event is flushed to disk verbatim");
static_assert(std::is_trivially_copyable_v<Event>);

/// Everything a snapshot/flush carries: the interned string table, the
/// node-name map, and the events of all threads merged and sorted by
/// start timestamp.
struct RecordedRun {
  std::vector<std::string> names;  ///< indexed by Event::name / ::phase
  std::map<std::uint32_t, std::string> node_names;
  std::vector<Event> events;       ///< sorted by (ts_ns, dur_ns desc)
  std::uint64_t dropped = 0;       ///< ring overwrites across all threads
  std::uint32_t thread_count = 0;

  const std::string& name_of(std::uint32_t id) const {
    static const std::string kUnknown = "?";
    return id < names.size() ? names[id] : kUnknown;
  }
  std::string node_name(std::uint32_t node) const {
    auto it = node_names.find(node);
    return it != node_names.end() ? it->second
                                  : "node" + std::to_string(node);
  }
};

class EventLog {
 public:
  /// `capacity_per_thread` bounds memory: each recording thread owns a
  /// ring of that many 64-byte events; older events are overwritten (and
  /// counted in dropped()) once a ring wraps.
  explicit EventLog(std::size_t capacity_per_thread = std::size_t{1} << 16);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Interns `s` into the string table, returning its stable id. Takes a
  /// mutex — intern once at setup and cache the id on hot paths.
  std::uint32_t intern(std::string_view s);

  /// Registers a human-readable name for a tree node id.
  void set_node_name(std::uint32_t node, std::string name);

  /// Nanoseconds since this log's construction (steady clock).
  std::uint64_t now_ns() const;

  /// Records `e` into the calling thread's ring. Fills Event::tid. The
  /// caller stamps ts_ns/dur_ns (use now_ns()). Wait-free after the
  /// thread's first call.
  void record(const Event& e);

  /// Convenience: record an instant of `kind` now.
  void instant(EventKind kind, std::uint32_t name_id, std::uint32_t node,
               std::uint64_t value = 0, std::uint8_t aux = 0);

  // --- Causal spans -------------------------------------------------------
  // The current span is thread-local. begin_span records a kSpanBegin
  // whose parent is the thread's current span (or an explicit parent for
  // cross-thread adoption) and makes the new span current; end_span
  // records kSpanEnd and restores the parent. Use the RAII helpers below.

  /// Opens a span and makes it current on this thread. `name_id`/`phase_id`
  /// are interned ids. Returns the new span id.
  SpanId begin_span(std::uint32_t name_id, std::uint32_t phase_id,
                    std::uint32_t node = kNoNode);
  void end_span(SpanId span);

  /// Span currently open on the calling thread (kNoSpan if none, or if
  /// the thread's current span belongs to a different EventLog).
  SpanId current_span() const;

  /// The calling thread's (log, span) pair, capturable at task-submit
  /// time and adopted on a worker thread via SpanAdopt. `log_uid`
  /// disambiguates pointer reuse across EventLog lifetimes: an adopt
  /// against a stale context is a safe no-op.
  struct Context {
    EventLog* log = nullptr;
    std::uint64_t log_uid = 0;
    SpanId span = kNoSpan;
  };
  static Context current_context();

  // --- Draining -----------------------------------------------------------

  /// Total events overwritten across all thread rings.
  std::uint64_t dropped() const;

  /// Merges every thread's ring (oldest first) into one timestamp-sorted
  /// RecordedRun. Intended for quiescent logs; see the header comment.
  RecordedRun snapshot() const;

  /// Binary flush of snapshot() to `path` (.nulog format, version 1).
  /// Throws util::Error naming the path on failure.
  void write_file(const std::string& path) const;

  /// Reads a .nulog file back. Throws util::Error naming the path on
  /// open failure or malformed content.
  static RecordedRun read_file(const std::string& path);

  std::uint64_t uid() const { return uid_; }
  std::size_t capacity_per_thread() const { return capacity_; }

  /// Per-thread ring (opaque; defined in the implementation).
  struct ThreadLog;

 private:
  ThreadLog& local();

  const std::uint64_t uid_;
  const std::size_t capacity_;
  std::uint64_t epoch_ns_ = 0;  ///< steady-clock ns at construction

  mutable std::mutex names_mu_;
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t, std::less<>> name_ids_;
  std::map<std::uint32_t, std::string> node_names_;

  mutable std::mutex threads_mu_;
  std::vector<std::unique_ptr<ThreadLog>> threads_;

  std::atomic<SpanId> next_span_{1};
};

/// RAII span: opens on construction (no-op when `log` is null), closes on
/// destruction. The id-based overload is the hot path — intern the name
/// and phase once at setup.
class SpanScope {
 public:
  SpanScope() = default;
  SpanScope(EventLog* log, std::uint32_t name_id, std::uint32_t phase_id,
            std::uint32_t node = kNoNode)
      : log_(log) {
    if (log_) span_ = log_->begin_span(name_id, phase_id, node);
  }
  SpanScope(EventLog* log, std::string_view name, std::string_view phase,
            std::uint32_t node = kNoNode)
      : log_(log) {
    if (log_) {
      span_ = log_->begin_span(log_->intern(name), log_->intern(phase), node);
    }
  }
  ~SpanScope() {
    if (log_) log_->end_span(span_);
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  SpanId id() const { return span_; }

 private:
  EventLog* log_ = nullptr;
  SpanId span_ = kNoSpan;
};

/// RAII cross-thread adoption: makes a captured Context's span current on
/// this thread for the scope's lifetime (the submit -> worker handoff in
/// sched::WorkStealingPool). Only the pointer+uid pair is compared before
/// use, so adopting a context whose EventLog has since been destroyed and
/// the address reused is a no-op rather than a dangling dereference.
class SpanAdopt {
 public:
  SpanAdopt() = default;
  explicit SpanAdopt(const EventLog::Context& ctx);
  ~SpanAdopt();
  SpanAdopt(const SpanAdopt&) = delete;
  SpanAdopt& operator=(const SpanAdopt&) = delete;

 private:
  bool adopted_ = false;
  EventLog* prev_log_ = nullptr;
  std::uint64_t prev_uid_ = 0;
  SpanId prev_span_ = kNoSpan;
};

}  // namespace northup::obs
