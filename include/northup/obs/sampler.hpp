// Periodic gauge sampler — turns MetricsRegistry point-in-time gauges
// into bounded timeseries (ISSUE 5 tentpole, part d).
//
// A background thread wakes every `interval` and appends one Sample per
// gauge; series are bounded at `max_samples` points (oldest dropped), so
// a sampler left running costs fixed memory. sample_once() exists for
// deterministic tests and for callers that drive their own cadence.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "northup/obs/metrics.hpp"

namespace northup::obs {

class MetricsSampler {
 public:
  struct Sample {
    double t_seconds = 0.0;  ///< seconds since the sampler was created
    double value = 0.0;
  };
  using Series = std::vector<Sample>;

  explicit MetricsSampler(const MetricsRegistry& registry,
                          std::chrono::milliseconds interval =
                              std::chrono::milliseconds(50),
                          std::size_t max_samples = 4096);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Starts the background thread (idempotent).
  void start();

  /// Stops and joins the background thread (idempotent; also run by the
  /// destructor).
  void stop();

  /// Takes one sample of every gauge right now. Thread-safe; usable with
  /// or without the background thread.
  void sample_once();

  /// Snapshot of all series collected so far (sorted by gauge name).
  std::map<std::string, Series> series() const;

  /// Total samples taken (across all gauges, counting sweep passes once).
  std::uint64_t sweeps() const {
    return sweeps_.load(std::memory_order_relaxed);
  }

  /// {"interval_ms": ..., "series": {"<gauge>": [[t, v], ...], ...}}.
  /// Doubles via std::to_chars, matching MetricsRegistry::to_json.
  std::string to_json() const;

 private:
  void run();

  const MetricsRegistry& registry_;
  const std::chrono::milliseconds interval_;
  const std::size_t max_samples_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::map<std::string, Series> series_;
  std::atomic<std::uint64_t> sweeps_{0};

  std::mutex wake_mu_;
  std::condition_variable wake_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace northup::obs
