// Periodic metrics sampler — turns MetricsRegistry point-in-time values
// into bounded timeseries (ISSUE 5 tentpole, part d; the `/timeseries`
// endpoint of the HTTP observability plane is served straight from it).
//
// A background thread wakes every `interval` and appends one Sample per
// gauge (and, when enabled, per counter — cumulative values; consumers
// diff adjacent points for rates). Retention is a fixed-size ring per
// series: once a series holds `max_samples` points the oldest is
// overwritten in place (O(1), no reallocation on the steady-state path),
// so a sampler left running for days costs fixed memory and serves "the
// last N minutes" without unbounded growth. sample_once() exists for
// deterministic tests and for callers that drive their own cadence.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "northup/obs/metrics.hpp"

namespace northup::obs {

class MetricsSampler {
 public:
  struct Sample {
    double t_seconds = 0.0;  ///< seconds since the sampler was created
    double value = 0.0;
  };
  using Series = std::vector<Sample>;

  explicit MetricsSampler(const MetricsRegistry& registry,
                          std::chrono::milliseconds interval =
                              std::chrono::milliseconds(50),
                          std::size_t max_samples = 4096,
                          bool include_counters = false);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Starts the background thread (idempotent).
  void start();

  /// Stops and joins the background thread (idempotent; also run by the
  /// destructor).
  void stop();

  /// Takes one sample of every gauge (and counter when enabled) right
  /// now. Thread-safe; usable with or without the background thread.
  void sample_once();

  /// Snapshot of all series collected so far (sorted by metric name,
  /// each series oldest-first). Counter series appear under the plain
  /// counter name with cumulative values.
  std::map<std::string, Series> series() const;

  /// Seconds since the sampler epoch right now (the time base of every
  /// Sample::t_seconds).
  double now_seconds() const;

  std::chrono::milliseconds interval() const { return interval_; }
  std::size_t max_samples() const { return max_samples_; }

  /// Total samples taken (across all series, counting sweep passes once).
  std::uint64_t sweeps() const {
    return sweeps_.load(std::memory_order_relaxed);
  }

  /// {"interval_ms": ..., "series": {"<gauge>": [[t, v], ...], ...}}.
  /// Doubles via std::to_chars, matching MetricsRegistry::to_json.
  std::string to_json() const;

 private:
  /// Fixed-capacity ring: `buf` grows until max_samples_, then `head`
  /// walks and overwrites in place. unroll() yields oldest-first order.
  struct Ring {
    std::vector<Sample> buf;
    std::size_t head = 0;  ///< index of the oldest sample once full

    void push(const Sample& s, std::size_t cap);
    Series unroll() const;
  };

  void run();

  const MetricsRegistry& registry_;
  const std::chrono::milliseconds interval_;
  const std::size_t max_samples_;
  const bool include_counters_;
  const std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::map<std::string, Ring> series_;
  std::atomic<std::uint64_t> sweeps_{0};

  std::mutex wake_mu_;
  std::condition_variable wake_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace northup::obs
