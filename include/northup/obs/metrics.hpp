// Always-on metrics registry — the measurement substrate for every
// perf-oriented change (overlap, balancing, sharding ablations).
//
// A MetricsRegistry is a flat namespace of named Counters (monotonic
// uint64, e.g. bytes moved per tree edge, queue pushes) and Gauges
// (double, e.g. peak residency, makespan). Components that want to be
// observable hold raw Counter/Gauge pointers handed out by the registry
// — registration is a one-time mutex-guarded lookup, the hot-path
// increment is a single relaxed atomic op, so instrumentation stays on
// even in benchmark runs (the "cheap, always-on telemetry" lesson of the
// heterogeneous-memory guidance literature).
//
// Naming convention (dotted, with "->" for tree edges):
//   bytes_moved.<src>-><dst>     dm.moves  dm.fragmented_accesses
//   storage.<node>.bytes_read    queue.<name>.pushes   runtime.spawns
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace northup::obs {

/// Monotonically increasing event/byte count. Thread-safe.
class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar with a monotonic-max helper. Thread-safe.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }

  /// Keeps the maximum of the current and the observed value.
  void record_max(double value) {
    double cur = value_.load(std::memory_order_relaxed);
    while (value > cur &&
           !value_.compare_exchange_weak(cur, value,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Named counters/gauges with stable addresses (safe to cache the
/// returned references for the lifetime of the registry).
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it at zero on first use.
  Counter& counter(const std::string& name);

  /// Returns the gauge named `name`, creating it at zero on first use.
  Gauge& gauge(const std::string& name);

  /// Point-in-time snapshots (sorted by name).
  std::map<std::string, std::uint64_t> counter_values() const;
  std::map<std::string, double> gauge_values() const;

  /// Sum of all counters whose name starts with `prefix` — e.g.
  /// counter_sum("bytes_moved.") is the total traffic over all edges.
  std::uint64_t counter_sum(const std::string& prefix) const;

  /// Machine-readable dump: {"counters": {...}, "gauges": {...}}.
  std::string to_json() const;

  /// Writes to_json() to `path`; throws util::Error on I/O failure.
  void write_json(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
};

}  // namespace northup::obs
