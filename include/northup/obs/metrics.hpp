// Always-on metrics registry — the measurement substrate for every
// perf-oriented change (overlap, balancing, sharding ablations).
//
// A MetricsRegistry is a flat namespace of named Counters (monotonic
// uint64, e.g. bytes moved per tree edge, queue pushes), Gauges
// (double, e.g. peak residency, makespan), and Histograms (log-bucketed
// latency distributions with p50/p95/p99 readout). Components that want
// to be observable hold raw Counter/Gauge/Histogram pointers handed out
// by the registry — registration is a one-time mutex-guarded lookup, the
// hot-path increment is a handful of relaxed atomic ops, so
// instrumentation stays on even in benchmark runs (the "cheap, always-on
// telemetry" lesson of the heterogeneous-memory guidance literature).
//
// Naming convention (dotted, with "->" for tree edges):
//   bytes_moved.<src>-><dst>     dm.moves  dm.fragmented_accesses
//   storage.<node>.bytes_read    queue.<name>.pushes   runtime.spawns
//   svc.latency.queue_wait       svc.latency.e2e  (histograms, seconds)
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace northup::obs {

/// Monotonically increasing event/byte count. Thread-safe.
class Counter {
 public:
  void add(std::uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() { add(1); }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar with a monotonic-max helper. Thread-safe.
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }

  /// Keeps the maximum of the current and the observed value.
  void record_max(double value) {
    double cur = value_.load(std::memory_order_relaxed);
    while (value > cur &&
           !value_.compare_exchange_weak(cur, value,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-bucketed distribution of positive values (latencies in seconds,
/// sizes in bytes). record() is wait-free: an atomic increment on one of
/// a fixed set of geometric buckets (6 per octave, so quantile readouts
/// carry at most ~12% relative bucket error) plus exact count/sum/min/max
/// accumulators. Thread-safe; quantiles may be read concurrently with
/// recording and see a consistent-enough point-in-time view.
class Histogram {
 public:
  /// Folds `value` into the distribution. Non-positive values land in
  /// the lowest bucket (they still count toward count/sum/min/max).
  void record(double value);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  double min() const;
  double max() const;
  double mean() const;

  /// Approximate q-quantile (q in [0, 1]): the geometric midpoint of the
  /// bucket holding the target rank, clamped to the exact [min, max]
  /// envelope. 0 when empty.
  double quantile(double q) const;

  /// One-line summary snapshot used by the registry's JSON dump.
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  Snapshot snapshot() const;

 private:
  /// 6 buckets per octave starting at 1e-9 covers [1 ns, ~3.3 h] for
  /// seconds-valued data and [1, ~2^42] for counts before saturating at
  /// the edge buckets.
  static constexpr int kSubBuckets = 6;
  static constexpr int kBuckets = 256;
  static constexpr double kLowest = 1e-9;

  static int bucket_of(double value);
  static double bucket_mid(int bucket);

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};  ///< valid only when count_ > 0
  std::atomic<double> max_{0.0};
};

/// Named counters/gauges/histograms with stable addresses (safe to cache
/// the returned references for the lifetime of the registry).
class MetricsRegistry {
 public:
  /// Returns the counter named `name`, creating it at zero on first use.
  Counter& counter(const std::string& name);

  /// Returns the gauge named `name`, creating it at zero on first use.
  Gauge& gauge(const std::string& name);

  /// Returns the histogram named `name`, creating it empty on first use.
  Histogram& histogram(const std::string& name);

  /// Point-in-time snapshots (sorted by name).
  std::map<std::string, std::uint64_t> counter_values() const;
  std::map<std::string, double> gauge_values() const;
  std::map<std::string, Histogram::Snapshot> histogram_values() const;

  /// Sum of all counters whose name starts with `prefix` — e.g.
  /// counter_sum("bytes_moved.") is the total traffic over all edges.
  std::uint64_t counter_sum(const std::string& prefix) const;

  /// Machine-readable dump:
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} — each
  /// histogram as {count, sum, min, max, p50, p90, p95, p99}. The
  /// histograms section is omitted while no histogram exists, keeping the
  /// PR-1 golden metrics dumps byte-stable. Doubles are formatted with
  /// std::to_chars (shortest round-trip), so dumps are locale-independent
  /// and byte-stable across runs with identical values.
  std::string to_json() const;

  /// Writes to_json() to `path`; throws util::Error naming the path on
  /// I/O failure.
  void write_json(const std::string& path) const;

  /// Prometheus text-exposition snapshot: counters as `counter`, gauges
  /// as `gauge`, histograms as `summary` (quantile labels + _sum/_count).
  ///
  /// Name mapping (the one documented contract, applied everywhere):
  ///   * A registered name may carry a label block: `base{key=value,...}`
  ///     — raw, unquoted values (e.g. `svc.tenant.e2e{tenant=acme}`).
  ///   * The base and every label *key* are sanitized byte-for-byte:
  ///     anything outside [a-zA-Z0-9_:] becomes '_' (so '.' -> '_' and
  ///     "->" -> "__"), and a leading digit gets a '_' prefix (the digit
  ///     itself is kept: "9x" -> "_9x").
  ///   * Label *values* pass through with exposition-format escaping:
  ///     '\' -> "\\", '"' -> "\"", newline -> "\n" (prom_escape_label_value).
  ///   * Series sharing a base (same family, different labels) share one
  ///     TYPE line; histograms merge the quantile label into the block.
  /// Doubles use std::to_chars like to_json().
  std::string to_prometheus() const;

  /// Writes to_prometheus() to `path`; throws util::Error naming the
  /// path on I/O failure.
  void write_prometheus(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// The exposition-format name mapping documented on to_prometheus():
/// bytes outside [a-zA-Z0-9_:] -> '_', leading digit prefixed with '_'.
std::string prom_sanitize_name(const std::string& name);

/// Escapes a label value per the Prometheus text exposition format:
/// '\' -> "\\", '"' -> "\"", newline -> "\n". Everything else (including
/// other control bytes and UTF-8) passes through untouched.
std::string prom_escape_label_value(const std::string& value);

}  // namespace northup::obs
