// Profile-driven plan tuning (ISSUE 8 tentpole).
//
// plan::AutoTuner answers the sizing questions the hand-written planners
// hard-code, using a calibrated MachineProfile instead of static config:
//
//   * choose_mode(): serial-with-fat-chunks vs window-2 double-buffering.
//     The hand planners always halve the staging budget to double-buffer;
//     on a slow edge (HDD-class storage) that *doubles* the total traffic
//     of a divide-and-conquer plan whose volume scales as 1/chunk, and
//     overlap cannot win back a 2x transfer inflation. The tuner compares
//     modeled makespans of both candidates and keeps the fat-chunk serial
//     plan when transfer dominates.
//   * tune_chunk_bytes(): per-edge chunk size — the full staging budget
//     on blocking levels, bounded on pipelined levels so enough chunks
//     exist to hide fill/drain, floored at the latency-amortization
//     point of the edge. Monotone in the edge's calibrated bandwidth
//     (halving the bandwidth never *increases* the chunk — the
//     satellite-3 invariant) and capped by the level's staging budget,
//     which planners already scale by resil::NodeHealth degradation.
//   * tune_nnz_cutoff(): CSR-Adaptive workgroup cutoff per tree level —
//     shrunk below the hand default until a shard yields enough
//     workgroups to occupy the leaf device, floored to keep rows
//     local-memory-resident.
//   * rank_children(): children ordered by *observed* parent→child
//     bandwidth (declared model as fallback), so planners prefer the
//     sibling that actually moved bytes fastest — including a node whose
//     breaker-degraded path measured slower than declared.
//
// The tuner is pure and stateless over a const profile: planners hold a
// `const AutoTuner*` through RuntimeOptions::auto_tune and re-query it
// between tree levels (the online adaptation hook).
#pragma once

#include <cstdint>
#include <vector>

#include "northup/plan/machine_profile.hpp"

namespace northup::plan {

/// What one tree level of a divide-and-conquer plan is about to do, in
/// aggregate over the whole level. Planners fill this from their own
/// loop structure for each candidate chunking.
struct Workload {
  std::uint64_t down_bytes = 0;  ///< total parent→child bytes
  std::uint64_t up_bytes = 0;    ///< total child→parent bytes
  std::uint64_t chunks = 1;      ///< chunk iterations at this level
  double down_accesses_per_chunk = 1.0;  ///< discrete transfers per chunk
  double up_accesses_per_chunk = 0.0;
  double compute_flops = 0.0;   ///< total device flops at this level
  double compute_bytes = 0.0;   ///< total device memory traffic
  std::uint64_t launches = 1;   ///< kernel launches at this level
  double groups_per_launch = 0.0;  ///< 0 = assume full occupancy
  /// Node whose attached processor runs the kernels (the leaves of this
  /// subtree may sit below `child`). kNoNode = use the fastest declared
  /// processor in the profile.
  std::uint32_t compute_node = kNoNode;
};

/// Execution mode for one level: process chunks serially (each chunk as
/// large as the full staging budget allows) or double-buffer with a
/// window of 2 in-flight chunks (half-budget chunks, transfer/compute
/// overlapped).
enum class Mode { kSerial, kDoubleBuffer };

class AutoTuner {
 public:
  explicit AutoTuner(MachineProfile profile);

  const MachineProfile& profile() const { return profile_; }

  /// Effective transfer parameters of the directed src→dst edge:
  /// calibrated when the profile observed moves there, else the declared
  /// storage models of the endpoints (bottleneck bandwidth, worst-case
  /// access latency).
  struct EdgeEstimate {
    double bytes_per_s = 0.0;
    double latency_s = 0.0;
    bool measured = false;
  };
  EdgeEstimate edge(std::uint32_t src, std::uint32_t dst) const;

  /// Modeled seconds for workload `w` on the parent↔child edge pair.
  /// `overlapped` models window-2 double-buffering: max(transfer,
  /// compute) plus one chunk's pipeline-fill compute; serial is the plain
  /// sum.
  double modeled_seconds(std::uint32_t parent, std::uint32_t child,
                         const Workload& w, bool overlapped) const;

  /// Picks the cheaper modeled candidate. `serial_w` describes the level
  /// with full-budget chunks, `pipe_w` with half-budget double-buffered
  /// chunks. `can_pipeline` is false when the runtime has no async pool
  /// (then kSerial is the only option).
  Mode choose_mode(std::uint32_t parent, std::uint32_t child,
                   const Workload& serial_w, const Workload& pipe_w,
                   bool can_pipeline) const;

  /// Chunk size on the src→dst edge. A blocking level takes the full
  /// budget (fewer per-chunk accesses, nothing to overlap); an
  /// `overlapped` level is additionally bounded so the workload splits
  /// into enough chunks to hide pipeline fill/drain — but never below
  /// the point where per-chunk transfer dwarfs the edge's calibrated
  /// access latency. Clamped to [floor_bytes, budget_bytes] and
  /// monotone non-decreasing in the edge's calibrated bandwidth under a
  /// fixed budget (halving the bandwidth never grows the chunk).
  std::uint64_t tune_chunk_bytes(std::uint32_t src, std::uint32_t dst,
                                 const Workload& w,
                                 std::uint64_t budget_bytes,
                                 std::uint64_t floor_bytes,
                                 bool overlapped) const;

  /// CSR-Adaptive nnz-per-workgroup cutoff for a shard of `shard_nnz`
  /// nonzeros executing on the processor at `leaf_node`: the largest
  /// power of two at most `hand_cutoff` that still yields >= 2 workgroups
  /// per compute unit (full occupancy), floored at 64 and capped so a
  /// workgroup's rows fit the device's local memory.
  std::uint64_t tune_nnz_cutoff(std::uint32_t leaf_node,
                                std::uint64_t shard_nnz,
                                std::uint64_t hand_cutoff) const;

  /// `children` reordered by decreasing observed parent→child bandwidth;
  /// unmeasured edges fall back to the declared estimate and ties keep
  /// the declared order.
  std::vector<std::uint32_t> rank_children(
      std::uint32_t parent, const std::vector<std::uint32_t>& children) const;

 private:
  double compute_seconds(const Workload& w) const;

  MachineProfile profile_;
};

}  // namespace northup::plan
