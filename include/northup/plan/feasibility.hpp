// Admission-time cost estimation over a MachineProfile (ISSUE 9).
//
// The job service must decide in microseconds whether a job with a
// deadline has any chance of meeting it — *before* the job queues, not
// after it expired at the head of the line. plan::FeasibilityEstimator
// answers that from the same MachineProfile the AutoTuner plans with:
// calibrated edge bandwidths where a recorded run exercised the edge,
// declared storage models everywhere else, and the profiled processor
// rooflines for the compute side. The estimate is deliberately a *lower
// bound* (perfect overlap, no queueing, no re-reads), so a job it calls
// infeasible is certainly infeasible; feasible jobs still face admission
// and deadline expiry downstream.
#pragma once

#include <cstdint>
#include <vector>

#include "northup/plan/auto_tuner.hpp"
#include "northup/plan/machine_profile.hpp"
#include "northup/topo/tree.hpp"

namespace northup::plan {

/// Aggregate work one job pushes through the hierarchy, as the admission
/// layer estimates it from the request alone (exact input/output bytes
/// and kernel flops — no decomposition knowledge).
struct WorkEstimate {
  double down_bytes = 0.0;     ///< input bytes entering root -> leaf
  double up_bytes = 0.0;       ///< result bytes returning leaf -> root
  double flops = 0.0;          ///< leaf kernel floating-point operations
  double compute_bytes = 0.0;  ///< leaf kernel memory traffic (roofline)

  double total_bytes() const { return down_bytes + up_bytes; }
};

/// Decomposed lower-bound cost of a WorkEstimate on one machine.
struct CostEstimate {
  double transfer_s = 0.0;  ///< chain transfer time, all edges summed
  double compute_s = 0.0;   ///< roofline kernel time on the best processor
  /// Ideal-pipelining bound: transfers and compute fully overlapped.
  double total_s() const {
    return transfer_s > compute_s ? transfer_s : compute_s;
  }
};

/// Stateless estimator over a profile and the machine's root-to-leaf
/// chain. Cheap to query (a handful of divisions) — safe on the submit
/// path under the service lock.
class FeasibilityEstimator {
 public:
  /// `chain` is the root-to-leaf node-id path the work traverses (the
  /// admission controller's first-child chain). Must have >= 1 node;
  /// a single-node chain has no transfer cost.
  FeasibilityEstimator(MachineProfile profile,
                       std::vector<std::uint32_t> chain);

  /// Declared-model estimator for `tree`: profiles the topology's
  /// storage models and processor rooflines (no measured edges) and
  /// walks the first-child chain root -> leaf. The zero-calibration
  /// fallback the service starts from; swap in a calibrated profile
  /// (same chain) once a recorded run exists.
  static FeasibilityEstimator from_tree(const topo::TopoTree& tree);

  const MachineProfile& profile() const { return tuner_.profile(); }
  const std::vector<std::uint32_t>& chain() const { return chain_; }

  /// Lower-bound cost of `w`: down_bytes cross every parent->child edge
  /// of the chain and up_bytes every child->parent edge (calibrated
  /// bandwidth when measured, declared bottleneck otherwise, one access
  /// latency charge per edge), while flops/compute_bytes burn on the
  /// fastest profiled processor (preferring one attached to the leaf).
  CostEstimate estimate(const WorkEstimate& w) const;

  /// True when `w` can possibly finish within `deadline_s`.
  /// `margin` scales the estimate (values > 1 reject earlier);
  /// `queue_delay_s` adds the expected wait before execution starts.
  /// Non-positive deadlines mean "no deadline" and are always feasible.
  bool feasible(const WorkEstimate& w, double deadline_s, double margin = 1.0,
                double queue_delay_s = 0.0) const;

 private:
  AutoTuner tuner_;  ///< shared edge-estimate logic (measured + fallback)
  std::vector<std::uint32_t> chain_;
};

}  // namespace northup::plan
