// Trace→profile calibration (ISSUE 8 tentpole).
//
// plan::Calibrator turns recorded obs::EventLog runs into a
// plan::MachineProfile. It reuses the analyze library's extraction
// (analyze::edge_move_stats / compute_stats) so the numbers the profile
// carries are byte-identical to what `northup-analyze --summary-json`
// reports, then fits per-directed-edge effective bandwidth and setup
// latency with a least-squares regression of duration over bytes.
//
// Roofline flops/s cannot be measured from the flight recorder (kCompute
// events carry launch counts and durations, not flop counts), so
// observe_topology() captures the declared processor rooflines and
// per-node storage models; ingest() then attaches the *measured* launch
// evidence and edge fits on top. An edge that was never exercised in any
// ingested run simply has no EdgeProfile — the AutoTuner falls back to
// the declared node model there.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "northup/analyze/analyze.hpp"
#include "northup/obs/event_log.hpp"
#include "northup/plan/machine_profile.hpp"
#include "northup/topo/tree.hpp"

namespace northup::plan {

class Calibrator {
 public:
  /// Records the declared machine: storage model per memory node and one
  /// ProcProfile per attached processor (roofline, CUs, local memory).
  /// Call once per machine; repeated calls reset the declared state.
  void observe_topology(const topo::TopoTree& tree);

  /// Accumulates one recorded run's kMove/kCompute evidence. May be
  /// called many times; edges merge across runs.
  void ingest(const obs::RecordedRun& run);

  /// Number of runs ingested so far.
  std::size_t runs() const { return runs_; }

  /// Fits and assembles the profile from everything seen so far.
  MachineProfile finish() const;

 private:
  std::vector<NodeProfile> nodes_;
  std::vector<ProcProfile> procs_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, analyze::EdgeMoveStats>
      edges_;
  std::map<std::uint32_t, analyze::ComputeStats> computes_;
  std::size_t runs_ = 0;
};

}  // namespace northup::plan
