// Serializable machine calibration (ISSUE 8 tentpole).
//
// A MachineProfile is what plan::Calibrator distills out of recorded
// obs::EventLog runs: per-directed-edge effective bandwidth/latency
// fitted from measured kMove events, per-processor roofline numbers, and
// the declared per-node storage models for fallback when an edge was
// never exercised. It round-trips through JSON (write_json/load throw
// util::Error naming the path, like the rest of the obs artifact
// writers) so a calibration run on one invocation can tune every later
// one — the profile file *is* the profiler→planner interface.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace northup::plan {

/// Sentinel matching obs::kNoNode: "no tree node".
inline constexpr std::uint32_t kNoNode = 0xffffffffu;

/// One directed parent↔child transfer edge, fitted from measured moves.
/// `bytes_per_s`/`latency_s` come from a least-squares fit of
/// duration = latency + bytes / bandwidth over the edge's kMove samples;
/// the raw accumulation (samples/bytes/seconds) is kept alongside so a
/// consumer can judge how much evidence backs the fit.
struct EdgeProfile {
  std::uint32_t src = kNoNode;
  std::uint32_t dst = kNoNode;
  std::string src_name;
  std::string dst_name;
  double bytes_per_s = 0.0;  ///< fitted effective bandwidth
  double latency_s = 0.0;    ///< fitted per-transfer setup latency
  std::uint64_t samples = 0; ///< kMove events backing the fit
  std::uint64_t bytes = 0;   ///< total bytes observed on this edge
  double seconds = 0.0;      ///< total measured transfer seconds
};

/// One processor: declared roofline (kCompute events carry launch counts
/// and durations but not flop counts, so flops_per_s is taken from the
/// topology) plus the measured launch evidence.
struct ProcProfile {
  std::uint32_t node = kNoNode;  ///< memory node the processor attaches to
  std::string name;
  double flops_per_s = 0.0;
  double mem_bytes_per_s = 0.0;
  double launch_latency_s = 0.0;
  std::uint32_t compute_units = 0;
  std::uint64_t local_mem_bytes = 0;
  std::uint64_t launches = 0;  ///< measured kCompute events
  std::uint64_t groups = 0;    ///< total workgroups across launches
  double seconds = 0.0;        ///< total measured kernel seconds
};

/// Declared storage model of one memory node — the fallback the tuner
/// uses for an edge with no measured moves.
struct NodeProfile {
  std::uint32_t node = kNoNode;
  std::string name;
  std::string kind;  ///< mem::to_string(StorageKind)
  double read_bytes_per_s = 0.0;
  double write_bytes_per_s = 0.0;
  double access_latency_s = 0.0;
};

struct MachineProfile {
  std::vector<NodeProfile> nodes;
  std::vector<EdgeProfile> edges;
  std::vector<ProcProfile> procs;

  /// Lookups; nullptr when absent.
  const EdgeProfile* find_edge(std::uint32_t src, std::uint32_t dst) const;
  const ProcProfile* find_proc(std::uint32_t node) const;
  const NodeProfile* find_node(std::uint32_t node) const;

  /// JSON serialization (versioned: `"northup_machine_profile": 1`).
  std::string to_json() const;
  /// Writes to_json() to `path`; throws util::Error naming the path.
  void write_json(const std::string& path) const;
  /// Parses a profile; throws util::Error naming `origin` on malformed
  /// content or a version/flavor mismatch.
  static MachineProfile from_json(const std::string& text,
                                  const std::string& origin = "<string>");
  /// Reads and parses `path`; throws util::Error naming the path on open
  /// failure or malformed content.
  static MachineProfile load(const std::string& path);
};

}  // namespace northup::plan
