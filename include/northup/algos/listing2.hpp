// The paper's Listing 2 — the NON-portable "regular pseudocode" contrast.
//
// "Note that the code will NOT work if adding a new memory level or
//  changing to another heterogeneous architecture. In contrast, the
//  equivalent Northup code (Listing 3) works on arbitrary heterogeneous
//  systems."
//
// This module implements that contrast faithfully: a dense-matrix
// multiply hard-coded for exactly one system shape (file storage root +
// one DRAM level + a GPU at the DRAM leaf), with explicit two-level loop
// nests and no tree queries. It refuses to run anywhere else — which is
// precisely the point; the test suite demonstrates both the equivalence
// of its results on the supported system and its failure on every other
// topology that the Listing-3-style gemm_northup handles unchanged.
#pragma once

#include "northup/algos/gemm.hpp"

namespace northup::algos {

/// Hard-coded two-level out-of-core GEMM. Throws util::TopologyError on
/// any topology other than {file-backed root -> DRAM leaf with a GPU}.
RunStats gemm_listing2(core::Runtime& rt, const GemmConfig& config);

}  // namespace northup::algos
