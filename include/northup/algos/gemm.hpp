// Dense matrix multiply (§IV-A), the compute-bound case study.
//
// The out-of-core pipeline mirrors the paper:
//   * Preprocessing (§V-B) stores A, B, C on the root storage node in
//     block-major layout (one contiguous extent per level-1 block), so a
//     data_down is a single sequential read.
//   * Each recursion level splits its matrices into square sub-blocks
//     sized to the child node's free capacity; block dot products
//     accumulate partial sums into a resident C sub-block (Fig 3).
//   * The row-shard-reuse optimization keeps a row strip of A resident at
//     the child level while the column strips of B stream past.
//   * The leaf runs the tiled GPU kernel: one workgroup per 16x16 C tile,
//     A/B tiles staged through local memory (the paper's HSA SNACK
//     matrix-multiply kernel, reimplemented for the simulated GPU).
#pragma once

#include <cstdint>

#include "northup/algos/common.hpp"
#include "northup/algos/dense.hpp"
#include "northup/data/buffer.hpp"

namespace northup::algos {

struct GemmConfig {
  std::uint64_t n = 512;       ///< square N x N matrices (multiple of leaf_tile)
  std::uint64_t leaf_tile = 16;  ///< GPU local-memory tile (paper: 16x16)
  bool shard_reuse = true;     ///< §IV-A row-shard reuse optimization
  double capacity_safety = 0.85;
  std::uint64_t seed = 42;
  /// Number of randomly sampled C elements to verify against an exactly
  /// computed dot product (0 disables verification).
  std::uint64_t verify_samples = 256;
  /// Fills RunStats::result_hash with a CRC32 of C (as laid out on its
  /// node) so two runs of the same config can be compared bit-for-bit.
  bool hash_result = false;
};

/// Leaf kernel: C(m x n) += A(m x k) * B(k x n). All three buffers must
/// live on `ctx`'s node; the kernel launches ceil(m/T)*ceil(n/T)
/// workgroups on the GPU attached to (or nearest above) the node.
void gemm_leaf(core::ExecContext& ctx, const MatView& a, const MatView& b,
               const MatView& c, std::uint64_t m, std::uint64_t n,
               std::uint64_t k, std::uint64_t tile);

/// Recursive block multiply: C += A * B with all views on `ctx`'s node.
/// At a non-leaf, splits into square blocks sized to the child capacity
/// and recurses; at a leaf, calls gemm_leaf.
void gemm_recurse(core::ExecContext& ctx, const MatView& a, const MatView& b,
                  const MatView& c, std::uint64_t m, std::uint64_t n,
                  std::uint64_t k, const GemmConfig& config);

/// In-memory baseline (§V-B): A and B already resident at the DRAM node;
/// no file I/O in the measurement, matching the paper's upper bound.
RunStats gemm_inmemory(core::Runtime& rt, const GemmConfig& config);

/// Northup out-of-core execution: inputs start on the root storage node.
RunStats gemm_northup(core::Runtime& rt, const GemmConfig& config);

/// Largest square power-of-two block dim `b` dividing `n`, with
/// `b >= leaf_tile`, such that the working set at the child fits:
/// with reuse, a full row strip of A stays resident (n/b + 2 blocks);
/// without, 3 blocks suffice. Throws CapacityError if none fits.
std::uint64_t choose_gemm_block(std::uint64_t n, std::uint64_t leaf_tile,
                                std::uint64_t child_available, bool reuse,
                                double safety);

}  // namespace northup::algos
