// Temporal blocking (ghost zones) for the out-of-core stencil.
//
// The width-1-halo scheme of hotspot_northup() pays a full storage
// round-trip per sweep. The classic out-of-core alternative loads each
// block with a halo of width k assembled from its neighbours, runs k
// sweeps on the extended region while it is resident (the valid region
// shrinks by one ring per sweep, reaching exactly the central block after
// k), and writes back once — k fewer storage passes at the price of
// redundant halo compute and wider (partly strided) halo reads. This is
// the natural extension of §IV-B's blocking once the hierarchy gap is the
// bottleneck, and the ablation bench quantifies the §V-D-style tradeoff.
//
// Implementation notes:
//   * Root storage layout matches hotspot_northup (block-tiled temp,
//     double-buffered, block-tiled power).
//   * The extended (bd+2k)^2 temperature and power regions are assembled
//     with honest unified-API moves: contiguous reads for the block and
//     the north/south strips, strided reads (per-row access charges) for
//     the east/west strips and corners.
//   * Blocks at the grid boundary skip the missing strips; the leaf
//     kernel clamps reads at the global edges instead.
#pragma once

#include "northup/algos/hotspot.hpp"

namespace northup::algos {

/// Runs `config.iterations` sweeps, `sweeps_per_load` at a time per block
/// residency. `config.iterations` must be a multiple of `sweeps_per_load`;
/// `sweeps_per_load == 1` is equivalent to hotspot_northup. The grid is
/// decomposed at level 1 only (the DRAM staging level), which must fit
/// two (bd + 2k)^2 temperature regions plus one power region.
RunStats hotspot_temporal_northup(core::Runtime& rt,
                                  const HotspotConfig& config,
                                  std::uint64_t sweeps_per_load);

}  // namespace northup::algos
