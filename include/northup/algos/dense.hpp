// Dense-matrix utilities shared by the GEMM and HotSpot case studies:
// a simple owning row-major matrix, deterministic generators, and the
// reference (CPU, unblocked) implementations used to verify the
// out-of-core execution bit-for-bit within floating-point tolerance.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "northup/util/assert.hpp"
#include "northup/util/rng.hpp"

namespace northup::algos {

/// Owning row-major float matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  std::size_t bytes() const { return data_.size() * sizeof(float); }

  float& at(std::size_t r, std::size_t c) {
    NU_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    NU_ASSERT(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

/// Uniform random matrix in [-1, 1), deterministic in `seed`.
Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed);

/// C = A * B, naive triple loop (verification only; O(n^3)).
Matrix gemm_reference(const Matrix& a, const Matrix& b);

/// Largest absolute element difference between two same-shape matrices.
double max_abs_diff(const Matrix& a, const Matrix& b);

/// Largest relative element difference (|a-b| / max(1, |a|)).
double max_rel_diff(const Matrix& a, const Matrix& b);

/// HotSpot-2D model coefficients (Rodinia's thermal constants folded into
/// the per-step update weights).
struct HotSpotParams {
  float cap_inv = 0.5f;        ///< 1 / thermal capacitance (scaled dt)
  float rx_inv = 0.1f;         ///< 1 / horizontal resistance
  float ry_inv = 0.1f;         ///< 1 / vertical resistance
  float rz_inv = 0.0625f;      ///< 1 / vertical (to ambient) resistance
  float ambient = 80.0f;       ///< ambient temperature
};

/// One HotSpot-2D step over the full grid (reference implementation).
/// Border cells clamp their out-of-grid neighbours to their own value.
Matrix hotspot_reference(const Matrix& temp, const Matrix& power,
                         const HotSpotParams& params);

/// In-place variant writing into `out` (must be same shape).
void hotspot_step(const Matrix& temp, const Matrix& power, Matrix& out,
                  const HotSpotParams& params);

}  // namespace northup::algos
