// Shared result/reporting types for the case-study algorithms.
#pragma once

#include <cstdint>
#include <string>

#include "northup/core/profiler.hpp"
#include "northup/core/runtime.hpp"
#include "northup/data/buffer.hpp"
#include "northup/data/view.hpp"

namespace northup::algos {

/// Outcome of one algorithm run (baseline or Northup).
struct RunStats {
  core::Breakdown breakdown;   ///< per-phase virtual-time totals + makespan
  double makespan = 0.0;       ///< virtual end-to-end seconds
  double max_rel_err = 0.0;    ///< vs reference (0 when verification off)
  bool verified = true;        ///< max_rel_err under tolerance
  std::uint64_t bytes_moved = 0;
  double wall_seconds = 0.0;   ///< real wall-clock of the functional run
  std::uint64_t spawns = 0;    ///< recursive spawns executed
  /// CRC32 of the output buffer bytes (0 when hashing is off). The chaos
  /// tests compare this between a faulted and a fault-free run to prove
  /// the resilience layer recovered bit-identical results.
  std::uint64_t result_hash = 0;
};

/// Relative-error tolerance for float32 block-accumulated kernels.
inline constexpr double kVerifyTolerance = 5e-3;

/// The DRAM-kind node where an in-memory baseline's working set lives:
/// the nearest byte-addressable ancestor (or self) of the first
/// GPU-attached node. Throws if the tree has no GPU.
topo::NodeId inmemory_home(core::Runtime& rt);

/// The node carrying the first GPU processor. Throws if absent.
topo::NodeId gpu_node(core::Runtime& rt);

/// Re-exported from the data layer: the view types the case studies use.
using data::MatView;
using data::move_submatrix;

/// Picks the compute processor for a leaf: the GPU attached to `node` if
/// any, else the CPU attached to it, else the nearest GPU above it.
device::Processor* leaf_processor(core::Runtime& rt, topo::NodeId node);

/// The AutoTuner the runtime was configured with
/// (RuntimeOptions::auto_tune); nullptr for hand-configured runs.
const plan::AutoTuner* auto_tuner(core::Runtime& rt);

/// The child a planner descends into from `node`: with a tuner, the
/// first child in observed-bandwidth order whose circuit breaker still
/// admits traffic (online re-ranking); without one, the declared first
/// child. Falls back to the declared first child when every child is
/// quarantined.
topo::NodeId planned_child(core::Runtime& rt, topo::NodeId node);

/// End of the planner descent chain from `node` under planned_child —
/// the node whose attached processor runs leaf kernels.
topo::NodeId planned_leaf(core::Runtime& rt, topo::NodeId node);

/// Plan-time mirror of ExecContext::available_bytes: free + reclaimable
/// capacity at `node`, derated by the resilience breaker's health scale
/// when it is below 1 so a degraded node is planned with smaller chunks.
std::uint64_t planned_available(core::Runtime& rt, topo::NodeId node);

/// CRC32 over `bytes` of `buf` read back through the data plane in
/// staging-sized chunks. Hashing the bytes as laid out on the node makes
/// the value layout-dependent but deterministic for a fixed config.
/// Matrices stored block-major should hash through hash_blocked_matrix
/// instead so the value is comparable across block sizes.
std::uint64_t hash_buffer(core::Runtime& rt, data::Buffer& buf,
                          std::uint64_t bytes);

/// CRC32 of an n x n float matrix stored block-major in `buf` (block
/// (bi, bj) of dimension `blk` occupies the contiguous range
/// [(bi*g + bj) * blk*blk*4, ...) with g = n / blk), hashed in *logical
/// row-major order*. Two runs that block the same matrix differently
/// produce the same hash iff the element values match bit-for-bit — the
/// invariant the autotuning ablation gates on. `blk` must divide `n`.
std::uint64_t hash_blocked_matrix(core::Runtime& rt, data::Buffer& buf,
                                  std::uint64_t n, std::uint64_t blk);

/// Starts the measured phase of a run: clears the EventSim trace, every
/// storage node's stats and I/O trace (so the §V-B preprocessing is
/// excluded, as in the paper), and the listed buffers' ready tasks.
void reset_measurement(core::Runtime& rt,
                       std::initializer_list<data::Buffer*> buffers);

}  // namespace northup::algos
