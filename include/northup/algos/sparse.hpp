// Sparse-matrix substrate: CSR representation, deterministic generators
// standing in for the Florida sparse-matrix collection (§V-A), and the
// reference SpMV.
//
// CSR-Adaptive's behaviour is driven by the row-length histogram, so the
// generators span the regimes the Florida matrices cover: regular banded
// (stencil-like), uniform random, power-law (web/social graphs), and an
// adversarial mix with a few very long rows that force the CSR-Vector
// path.
#pragma once

#include <cstdint>
#include <vector>

#include "northup/util/assert.hpp"
#include "northup/util/rng.hpp"

namespace northup::algos {

/// Compressed Sparse Row matrix (the paper's row_ptr / col_id / data).
struct Csr {
  std::uint32_t rows = 0;
  std::uint32_t cols = 0;
  std::vector<std::uint32_t> row_ptr;  ///< rows + 1 entries
  std::vector<std::uint32_t> col_id;   ///< nnz entries, sorted per row
  std::vector<float> data;             ///< nnz entries

  std::uint64_t nnz() const { return col_id.size(); }
  std::uint32_t row_len(std::uint32_t r) const {
    return row_ptr[r + 1] - row_ptr[r];
  }

  /// Structural invariants: monotone row_ptr, in-range sorted columns,
  /// matching array lengths. Throws util::Error on violation.
  void validate() const;
};

/// Banded matrix: each row has entries in a +/- `half_band` window.
Csr banded_matrix(std::uint32_t rows, std::uint32_t half_band,
                  std::uint64_t seed);

/// Uniform random: every row draws ~`avg_nnz` distinct random columns.
Csr uniform_matrix(std::uint32_t rows, std::uint32_t cols,
                   std::uint32_t avg_nnz, std::uint64_t seed);

/// Power-law row lengths (Pareto with shape `alpha`), mean ~`avg_nnz`.
Csr powerlaw_matrix(std::uint32_t rows, std::uint32_t cols,
                    std::uint32_t avg_nnz, double alpha, std::uint64_t seed);

/// Uniform base plus `num_dense` rows of `dense_len` entries — the
/// adversarial shape that forces CSR-Adaptive's CSR-Vector bin.
Csr dense_rows_matrix(std::uint32_t rows, std::uint32_t cols,
                      std::uint32_t avg_nnz, std::uint32_t num_dense,
                      std::uint32_t dense_len, std::uint64_t seed);

/// Deterministic dense vector in [-1, 1).
std::vector<float> random_vector(std::uint32_t n, std::uint64_t seed);

/// y = A * x, reference implementation.
std::vector<float> spmv_reference(const Csr& a, const std::vector<float>& x);

/// Largest relative element difference between two vectors.
double max_rel_diff(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace northup::algos
