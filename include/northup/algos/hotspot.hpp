// HotSpot-2D thermal stencil (§IV-B), the regular memory-bound case study.
//
// Out-of-core structure per the paper (Fig 4):
//   * The temperature and power grids are stored block-tiled on the root
//     (one contiguous extent per block, the §V-B preprocessing), plus a
//     packed halo extent per block holding its four border vectors
//     [N, S, W, E] contiguously.
//   * Each sweep moves every block, its power block, and its packed halo
//     down the tree, computes one stencil step at the leaf, moves the
//     output block up, and republishes the block's edge rows/columns into
//     the neighbours' halo slots for the next sweep. East/west columns are
//     packed into contiguous vectors in DRAM before being written
//     ("We allocate vector buffers and pack the border data in a
//      contiguous manner"), so every file access stays sequential.
//   * Inner (non-root) levels re-split a block into sub-blocks whose
//     halos are extracted from the parent block and parent halo.
//   * The leaf kernel stages (tile+2)^2 halo'ed tiles through GPU local
//     memory, one workgroup per 16x16 tile, as in the Rodinia OpenCL code.
#pragma once

#include <cstdint>

#include "northup/algos/common.hpp"
#include "northup/algos/dense.hpp"

namespace northup::algos {

struct HotspotConfig {
  std::uint64_t n = 512;        ///< square grid (multiple of leaf_tile)
  std::uint64_t leaf_tile = 16; ///< GPU tile (paper: 16x16 local memory)
  std::uint64_t iterations = 1; ///< stencil sweeps
  double capacity_safety = 0.85;
  std::uint64_t seed = 7;
  bool verify = true;           ///< full-grid compare vs reference
  /// Fills RunStats::result_hash with a CRC32 of the final temperature
  /// grid (as laid out on its node) for bit-exact run comparison.
  bool hash_result = false;
  HotSpotParams params;
  /// Effective-bandwidth calibration for the leaf kernel's cost model:
  /// Rodinia HotSpot-2D on the paper's entry-level APU sustains only a
  /// small fraction of the raw shared-DRAM bandwidth (small launches,
  /// halo-edge divergence, per-launch overhead), so the modeled device
  /// traffic is raw bytes x this factor. Chosen so the simulated Fig 7
  /// GPU-time shares land in the published band; see EXPERIMENTS.md.
  double device_traffic_factor = 80.0;
};

/// One block in flight at some tree level: temperature in/out, power, and
/// the packed halo vectors, all on the same node. Halo layout: 4 runs of
/// `dim` floats in order N, S, W, E.
struct StencilBlock {
  data::Buffer* temp_in = nullptr;
  data::Buffer* power = nullptr;
  data::Buffer* halo = nullptr;
  data::Buffer* temp_out = nullptr;
  std::uint64_t dim = 0;
};

/// Computes one stencil step of `block` at `ctx`'s position in the tree:
/// leaf -> tiled kernel; inner node -> split into sub-blocks sized to the
/// child capacity and recurse.
void hotspot_recurse(core::ExecContext& ctx, const StencilBlock& block,
                     const HotspotConfig& config);

/// In-memory baseline: grids resident at the DRAM node, no file I/O.
RunStats hotspot_inmemory(core::Runtime& rt, const HotspotConfig& config);

/// Northup out-of-core execution from block-tiled root storage.
RunStats hotspot_northup(core::Runtime& rt, const HotspotConfig& config);

/// Largest block dim `b` dividing `n` (b >= leaf_tile) whose in-flight
/// set (3 b^2 grids + 4b halo floats) fits the child capacity.
std::uint64_t choose_hotspot_block(std::uint64_t n, std::uint64_t leaf_tile,
                                   std::uint64_t child_available,
                                   double safety);

}  // namespace northup::algos
