// algos::Plan — one dispatch signature over the case-study planners.
//
// Every out-of-core program (GEMM, HotSpot, SpMV) used to be its own
// ad-hoc `*_northup(Runtime&, Config)` free function, so each caller — the
// job service, the benches — grew a per-algorithm dispatch switch. A Plan
// captures the configuration once; `run()` executes the full program
// (input setup, the measured continuation-DAG run, verification) and
// `build()` exposes the same program as a node of a caller-owned
// exec::TaskGraph whose completion future carries the RunStats, so whole
// programs compose with the same dependency machinery their chunks use.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "northup/algos/csr_adaptive.hpp"
#include "northup/algos/gemm.hpp"
#include "northup/algos/hotspot.hpp"
#include "northup/core/runtime.hpp"
#include "northup/exec/future.hpp"
#include "northup/exec/task_graph.hpp"

namespace northup::algos {

class Plan {
 public:
  virtual ~Plan() = default;

  /// Planner name ("gemm", "hotspot", "spmv") for logs and reports.
  virtual std::string name() const = 0;

  /// Runs the full program on `rt`: input allocation and §V-B
  /// preprocessing, the measured run (a continuation DAG — pipelined when
  /// the runtime has pipeline threads, inline otherwise), verification.
  virtual RunStats run(core::Runtime& rt) const = 0;

  /// Futures-based dispatch: schedules run() as one node of `graph`
  /// (caller-owned, e.g. a service draining a queue of plans) behind
  /// `deps`, and returns the stats future. Cancellation and upstream
  /// failure complete the future with CancelledError / DependencyError.
  /// The plan and `rt` must outlive the graph.
  exec::Future<RunStats> build(core::Runtime& rt, exec::TaskGraph& graph,
                               std::vector<exec::TaskHandle> deps = {}) const;
};

/// Concrete plans bind one config each.
std::unique_ptr<Plan> make_plan(GemmConfig config);
std::unique_ptr<Plan> make_plan(HotspotConfig config);
std::unique_ptr<Plan> make_plan(SpmvConfig config);

}  // namespace northup::algos
