// CSR-Adaptive SpMV (§IV-C), the irregular memory-bound case study.
//
// CSR-Adaptive [Greathouse & Daga, SC'14] bins consecutive rows into row
// blocks: short rows are grouped until their combined nnz fills a
// workgroup's local memory (CSR-Stream); a long row gets a workgroup to
// itself (CSR-Vector). Binning runs on the CPU ("CSR-Adaptive uses the CPU
// for binning rows into different categories", §V-C); the kernels run on
// the GPU.
//
// The Northup out-of-core version shards the three CSR arrays in the row
// dimension, nnz-aware: a shard's combined bytes (row_ptr + col_id + data
// slices + its y output) must fit the child's free capacity after the
// dense vector x — which stays resident at the compute level, per the
// paper's observation that "the fastest memory has to be big enough to
// hold the vector". Shard sizes are therefore variable, which is exactly
// why CSR-Adaptive shows the worst I/O regularity of the three case
// studies (§V-B).
#pragma once

#include <cstdint>
#include <vector>

#include "northup/algos/common.hpp"
#include "northup/algos/sparse.hpp"

namespace northup::algos {

struct SpmvConfig {
  enum class Pattern { Banded, Uniform, PowerLaw, DenseRows };

  std::uint32_t rows = 100000;
  std::uint32_t avg_nnz = 16;
  Pattern pattern = Pattern::Uniform;
  std::uint64_t seed = 99;
  /// CSR-Stream bin capacity: rows are grouped until their combined nnz
  /// reaches this (sized to GPU local memory, as in the original paper).
  std::uint32_t nnz_per_workgroup = 1024;
  double capacity_safety = 0.85;
  bool verify = true;
  /// Fills RunStats::result_hash with a CRC32 of the output vector y for
  /// bit-exact run comparison.
  bool hash_result = false;
  /// Effective-bandwidth calibration for the gather-heavy SpMV kernel
  /// (random x accesses defeat coalescing): modeled device traffic is
  /// raw bytes x this factor. See EXPERIMENTS.md.
  double device_traffic_factor = 55.0;
  /// The CPU-side work per shard (binning passes, shard planning, buffer
  /// packing — "CSR-Adaptive uses the CPU for binning rows ... and spends
  /// relatively more time", §V-C), as a multiple of one row_ptr sweep.
  double cpu_binning_factor = 12.0;
  /// Whether binning cost counts toward the measured run. The in-memory
  /// baseline bins once at load time (preprocessing, excluded like the
  /// paper's file reorganization); Northup re-bins every shard as it
  /// arrives, which is part of its runtime.
  bool count_binning = true;
  /// How many times the full SpMV executes (an iterative solver re-applies
  /// the same matrix). With a shard cache attached, repeat sweeps re-key
  /// the identical row shards and turn their downloads into hits.
  std::uint32_t repeats = 1;

  /// Materializes the configured input matrix.
  Csr make_matrix() const;
};

/// One CSR-Adaptive row block.
enum class RowBlockKind { Stream, Vector };

struct RowBlock {
  std::uint32_t first_row = 0;
  std::uint32_t row_count = 0;
  RowBlockKind kind = RowBlockKind::Stream;
};

/// CPU binning pass: groups consecutive rows into Stream blocks of at
/// most `nnz_per_workgroup` combined nnz; any single row exceeding that
/// becomes a Vector block. `row_ptr` spans rows+1 absolute offsets.
std::vector<RowBlock> bin_rows(const std::uint32_t* row_ptr,
                               std::uint32_t rows,
                               std::uint32_t nnz_per_workgroup);

/// A row shard in flight at some tree level: slices of the three CSR
/// arrays for rows [first_row, first_row + rows), the resident dense
/// vector x (full length), and the y output slice. row_ptr holds
/// *absolute* offsets; nnz_base = row_ptr[first_row] rebases col_id/data.
struct SpmvShard {
  data::Buffer* row_ptr = nullptr;  ///< (rows + 1) uint32
  data::Buffer* col_id = nullptr;   ///< shard nnz uint32
  data::Buffer* data = nullptr;     ///< shard nnz float
  data::Buffer* x = nullptr;        ///< full vector, resident at this node
  data::Buffer* y = nullptr;        ///< rows floats
  std::uint32_t rows = 0;
  std::uint32_t nnz_base = 0;
};

/// Recursive shard execution: leaf -> CPU binning + GPU row-block
/// kernels; inner node -> nnz-aware re-sharding into the child.
void spmv_recurse(core::ExecContext& ctx, const SpmvShard& shard,
                  const SpmvConfig& config);

/// In-memory baseline: CSR arrays and vectors resident at the DRAM node.
RunStats spmv_inmemory(core::Runtime& rt, const SpmvConfig& config);

/// Northup out-of-core execution from root storage.
RunStats spmv_northup(core::Runtime& rt, const SpmvConfig& config);

}  // namespace northup::algos
