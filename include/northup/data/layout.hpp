// Data-layout transformation during movement (§VI, "Data Layout").
//
// "Different architectures may favor different memory layouts and access
//  patterns (e.g., row versus col-major, AoS versus SoA). ... One can
//  imagine when data migrates across memory levels, chunks can be
//  transformed and stored in different formats. ... Northup can be easily
//  extended to support this with a special version of move_data()."
//
// This module is that extension: transforming variants of move_data that
// transpose a 2-D chunk or convert between array-of-structs and
// struct-of-arrays while the bytes cross a tree edge. The reorganization
// work is charged to the staging (CPU-side) pass, so the ablation bench
// can weigh the one-time transform against the strided accesses it
// removes downstream.
#pragma once

#include <cstdint>

#include "northup/data/data_manager.hpp"

namespace northup::data {

/// Transformation applied while a chunk moves between nodes.
enum class LayoutTransform {
  None,       ///< plain move (same as move_data)
  Transpose,  ///< rows x cols row-major -> cols x rows row-major
  AosToSoa,   ///< [r0f0 r0f1 ...][r1f0 ...] -> [f0 of all records][f1 ...]
  SoaToAos,   ///< inverse of AosToSoa
};

/// Cost knobs for the reorganization pass (performed on the CPU while the
/// chunk is staged in host memory).
struct TransformCostModel {
  /// Effective reorganization bandwidth: a strided copy through caches.
  double bytes_per_s = 4.0e9;
};

/// Moves `rows` x `cols` elements of `elem_size` bytes from `src` to
/// `dst`, transposing in flight. `dst` receives the cols x rows row-major
/// image. Both offsets are byte offsets. Charges the underlying move plus
/// a CPU "transform" task; updates dst.ready.
void move_transposed(DataManager& dm, Buffer& dst, const Buffer& src,
                     std::uint64_t rows, std::uint64_t cols,
                     std::uint64_t elem_size, std::uint64_t dst_offset = 0,
                     std::uint64_t src_offset = 0,
                     const TransformCostModel& cost = {});

/// Moves `records` records of `fields` fields, each field `field_size`
/// bytes, converting between AoS and SoA per `transform` (AosToSoa or
/// SoaToAos). Charges like move_transposed.
void move_reinterleaved(DataManager& dm, Buffer& dst, const Buffer& src,
                        std::uint64_t records, std::uint64_t fields,
                        std::uint64_t field_size, LayoutTransform transform,
                        std::uint64_t dst_offset = 0,
                        std::uint64_t src_offset = 0,
                        const TransformCostModel& cost = {});

}  // namespace northup::data
