// Pitched sub-matrix views over Buffers and strided sub-matrix movement.
//
// A MatView names a rows x cols row-major region inside a Buffer by byte
// offset and row pitch; move_submatrix() relocates such a region between
// any two views, degrading gracefully to one contiguous move when both
// sides are dense. Shared by the recursive grid driver and the dense
// case studies.
#pragma once

#include <cstdint>

#include "northup/data/data_manager.hpp"

namespace northup::data {

/// A pitched row-major sub-matrix view into a Buffer.
struct MatView {
  Buffer* buf = nullptr;
  std::uint64_t offset = 0;  ///< bytes from the buffer start to (0,0)
  std::uint64_t pitch = 0;   ///< bytes between consecutive rows
};

/// Moves a rows x row_bytes sub-matrix between two views. Uses one
/// contiguous move when both views are dense (pitch == row_bytes),
/// otherwise a strided 2-D block move.
void move_submatrix(DataManager& dm, const MatView& dst, const MatView& src,
                    std::uint64_t rows, std::uint64_t row_bytes);

}  // namespace northup::data
