// Seam between the data layer and the cache subsystem (northup::cache).
//
// DataManager consults an installed CacheBackend on the paths where a
// runtime-managed pool/cache changes behavior: capacity pressure on
// alloc (make_room), the cached download path (acquire/release_shard),
// and the write/release notifications that keep cached shards coherent
// with their source buffers. The concrete implementation lives one layer
// up (cache::CacheManager) so northup_data does not depend on it.
#pragma once

#include <cstdint>

#include "northup/data/buffer.hpp"
#include "northup/topo/tree.hpp"

namespace northup::data {

class CacheBackend {
 public:
  virtual ~CacheBackend() = default;

  /// True when `node` has a BufferPool (capacity accounting + eviction).
  virtual bool manages(topo::NodeId node) const = 0;

  /// True when `node` has a ShardCache (cached download path).
  virtual bool caches(topo::NodeId node) const = 0;

  /// Frees space on `node` until `bytes` more fit, by evicting unpinned
  /// cached shards (writing dirty ones back to the parent). Returns false
  /// when nothing more can be evicted.
  virtual bool make_room(topo::NodeId node, std::uint64_t bytes) = 0;

  /// Bytes on `node` held by unpinned cache entries — reclaimable on
  /// demand, so planners may treat them as available.
  virtual std::uint64_t evictable_bytes(topo::NodeId node) const = 0;

  /// Content-keyed download of `rows` runs of `row_bytes` from `src`
  /// (starting at `src_offset`, source rows `src_pitch` apart) into a
  /// shard resident at `child`. Returns a pinned buffer owned by the
  /// cache; pass it back through release_shard.
  virtual Buffer* acquire(const Buffer& src, topo::NodeId child,
                          std::uint64_t rows, std::uint64_t row_bytes,
                          std::uint64_t src_offset, std::uint64_t src_pitch) = 0;

  /// Unpins a shard returned by acquire. `dirty` marks it for writeback
  /// to the source region when it is evicted or flushed.
  virtual void release_shard(Buffer* shard, bool dirty) = 0;

  /// `dst`'s bytes [offset, offset + size) were overwritten: cached
  /// shards sourced from that region are stale and must be dropped.
  virtual void on_written(const Buffer& dst, std::uint64_t offset,
                          std::uint64_t size) = 0;

  /// `buffer` is being released: every shard cached from it must go.
  virtual void on_released(const Buffer& buffer) = 0;

  /// An allocation landed on `node` (pool high-water bookkeeping).
  virtual void note_alloc(topo::NodeId node) = 0;
};

}  // namespace northup::data
