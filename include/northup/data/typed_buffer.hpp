// Typed buffer wrapper — the type-safe "UniversalType" the paper defers
// to future work (§III-D: "Better support of type safety and C++11 like
// semantics are left for future work. In actual implementation, a
// specific universal type (e.g., a UniversalType) can be designed").
//
// TypedBuffer<T> wraps a Buffer with element-based sizes/offsets and an
// RAII release tie to its DataManager, eliminating the two error classes
// the raw handle still allows: byte/element confusion and forgotten
// releases. Restricted to trivially copyable T — the only kinds of data
// that may legally cross storage levels byte-wise.
#pragma once

#include <span>
#include <type_traits>
#include <utility>

#include "northup/data/data_manager.hpp"

namespace northup::data {

template <typename T>
class TypedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "only trivially copyable types can cross memory levels");

 public:
  TypedBuffer() = default;

  /// Allocates `count` elements on `node`.
  TypedBuffer(DataManager& dm, std::uint64_t count, topo::NodeId node)
      : dm_(&dm), count_(count), buffer_(dm.alloc(count * sizeof(T), node)) {}

  TypedBuffer(TypedBuffer&& other) noexcept
      : dm_(std::exchange(other.dm_, nullptr)),
        count_(std::exchange(other.count_, 0)),
        buffer_(std::exchange(other.buffer_, Buffer{})) {}

  TypedBuffer& operator=(TypedBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      dm_ = std::exchange(other.dm_, nullptr);
      count_ = std::exchange(other.count_, 0);
      buffer_ = std::exchange(other.buffer_, Buffer{});
    }
    return *this;
  }

  TypedBuffer(const TypedBuffer&) = delete;
  TypedBuffer& operator=(const TypedBuffer&) = delete;

  ~TypedBuffer() { reset(); }

  /// Releases the storage (idempotent).
  void reset() {
    if (dm_ != nullptr && buffer_.valid()) dm_->release(buffer_);
    dm_ = nullptr;
    count_ = 0;
  }

  bool valid() const { return buffer_.valid(); }
  std::uint64_t count() const { return count_; }
  std::uint64_t bytes() const { return count_ * sizeof(T); }
  topo::NodeId node() const { return buffer_.node; }

  /// The underlying handle, for interop with the untyped API.
  Buffer& raw() { return buffer_; }
  const Buffer& raw() const { return buffer_; }

  /// Element-indexed host transfer helpers.
  void write(const T* src, std::uint64_t elem_count,
             std::uint64_t elem_offset = 0) {
    NU_CHECK(elem_offset + elem_count <= count_, "typed write out of range");
    dm_->write_from_host(buffer_, src, elem_count * sizeof(T),
                         elem_offset * sizeof(T));
  }

  void read(T* dst, std::uint64_t elem_count,
            std::uint64_t elem_offset = 0) const {
    NU_CHECK(elem_offset + elem_count <= count_, "typed read out of range");
    dm_->read_to_host(dst, buffer_, elem_count * sizeof(T),
                      elem_offset * sizeof(T));
  }

  /// Element-indexed copy from another typed buffer of the same T.
  void copy_from(const TypedBuffer& src, std::uint64_t elem_count,
                 std::uint64_t dst_elem_offset = 0,
                 std::uint64_t src_elem_offset = 0) {
    NU_CHECK(dst_elem_offset + elem_count <= count_ &&
                 src_elem_offset + elem_count <= src.count_,
             "typed copy out of range");
    dm_->move_data(buffer_, src.buffer_,
                   {.size = elem_count * sizeof(T),
                    .dst_offset = dst_elem_offset * sizeof(T),
                    .src_offset = src_elem_offset * sizeof(T)});
  }

  /// Host view (byte-addressable or mmap-backed nodes), element-typed.
  T* host_ptr() { return reinterpret_cast<T*>(dm_->host_view(buffer_)); }

  /// Non-throwing host_ptr: nullptr when the node has no host mapping.
  T* try_host_ptr() {
    return reinterpret_cast<T*>(dm_->try_host_view(buffer_));
  }

  /// The whole buffer as a typed span over its host view (throws like
  /// host_ptr when the node has no mapping).
  std::span<T> span() { return std::span<T>(host_ptr(), count_); }

 private:
  DataManager* dm_ = nullptr;
  std::uint64_t count_ = 0;
  Buffer buffer_;
};

}  // namespace northup::data
