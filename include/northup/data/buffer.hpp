// The opaque buffer handle — the paper's "UniversalType" (§III-D).
//
// The published prototype passes void* and dereferences per storage kind
// inside the wrapper (Listing 4); the authors explicitly defer type safety
// to future work. We implement the handle they sketch: a Buffer names the
// tree node it lives on plus the allocation within that node's storage,
// and all access goes through DataManager, which dispatches on the storage
// kinds — same semantics, no unsafe dereferencing.
#pragma once

#include <cstdint>

#include "northup/memsim/storage.hpp"
#include "northup/sim/event_sim.hpp"
#include "northup/topo/tree.hpp"

namespace northup::data {

/// Handle to space allocated on one memory/storage tree node.
///
/// `ready` is the id of the EventSim task after which the buffer's
/// contents are valid in virtual time. DataManager threads it through
/// every move, so chunk pipelines acquire copy/compute overlap without
/// explicit dependency bookkeeping by the application (§III-C's
/// multi-stage transfer).
struct Buffer {
  topo::NodeId node = topo::kInvalidNode;
  mem::Allocation allocation;
  sim::TaskId ready = sim::kInvalidTask;
  /// Monotonic identity assigned by DataManager::alloc (0 = none). Content
  /// caches key on it: the id survives the struct being copied or swapped,
  /// and is never reused, so a released source can't alias a live entry.
  std::uint64_t id = 0;

  bool valid() const { return allocation.valid; }
  std::uint64_t size() const { return allocation.size; }
};

}  // namespace northup::data
