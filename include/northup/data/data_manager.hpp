// Unified data-management interface — Table I of the paper.
//
//   alloc(size, tree_node)                  -> Buffer
//   move_data(dst, src, size, offsets)      (kind-dispatched copy)
//   move_data_down(dst, src, ..., child_i)  (parent -> i-th child)
//   move_data_up(dst, src, ...)             (child -> parent)
//   release(buffer)
//
// "By checking the storage_type of source and destination, a data movement
//  function internally can determine the correct data copy function to use
//  (e.g., DMA or I/O function)." (§III-B)
//
// Every operation both performs the functional copy (real bytes through
// real files / host memory) and, when an EventSim is attached, charges a
// model-derived cost onto the resource of the node whose engine the copy
// occupies. Multi-hop moves (file <-> device memory) are staged through
// the intermediate level exactly as hardware would.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "northup/data/buffer.hpp"
#include "northup/data/cache_backend.hpp"
#include "northup/memsim/storage.hpp"
#include "northup/obs/event_log.hpp"
#include "northup/obs/metrics.hpp"
#include "northup/resil/resilience.hpp"
#include "northup/sim/event_sim.hpp"
#include "northup/topo/tree.hpp"

namespace northup::data {

/// Parameters of one move_data/move_data_down/move_data_up call — the
/// replacement for the four easily-swapped positional integers of the
/// original Table I surface. Designated initializers keep call sites
/// self-documenting:
///
///   dm.move_data_down(dst, src, {.size = n, .src_offset = off});
///
/// `deps` adds ordering constraints beyond the buffers' own ready tasks
/// (used by device::Stream for in-order queues).
struct CopySpec {
  std::uint64_t size = 0;
  std::uint64_t dst_offset = 0;
  std::uint64_t src_offset = 0;
  std::vector<sim::TaskId> deps = {};
};

/// Fixed per-operation overheads for buffer setup (the "buffer setup"
/// component of Figs 7/8): allocation syscall / driver-call costs by kind.
struct SetupCostModel {
  double dram_alloc_s = 2e-6;     ///< malloc + touch
  double file_alloc_s = 50e-6;    ///< open + truncate
  double device_alloc_s = 30e-6;  ///< clCreateBuffer-style driver call
  double release_s = 1e-6;

  double alloc_time(mem::StorageKind kind) const {
    if (mem::is_file_backed(kind)) return file_alloc_s;
    if (kind == mem::StorageKind::DeviceMem ||
        kind == mem::StorageKind::Scratchpad) {
      return device_alloc_s;
    }
    return dram_alloc_s;
  }
};

/// Phase labels used for the execution-time breakdowns (Figs 7/8).
namespace phase {
inline constexpr const char* kSetup = "setup";
inline constexpr const char* kIo = "io";          ///< file storage accesses
inline constexpr const char* kTransfer = "transfer";  ///< DMA / memcpy between memories
inline constexpr const char* kCpu = "cpu";
inline constexpr const char* kGpu = "gpu";
inline constexpr const char* kCache = "cache";  ///< shard-cache hits/evicts
inline constexpr const char* kResil = "resil";  ///< retry/quarantine instants
}  // namespace phase

/// Binds the descriptive TopoTree to concrete Storage backends and
/// implements the Table I interface over them.
class DataManager {
 public:
  /// `sim` may be null: all operations then run functionally with no
  /// virtual-time accounting (useful in unit tests).
  DataManager(const topo::TopoTree& tree, sim::EventSim* sim);

  /// Installs the backend for a memory node. Every node an application
  /// touches must be bound; the core Runtime binds all nodes at startup.
  void bind_storage(topo::NodeId node, std::unique_ptr<mem::Storage> storage);

  bool is_bound(topo::NodeId node) const;
  mem::Storage& storage(topo::NodeId node);
  const mem::Storage& storage(topo::NodeId node) const;
  const topo::TopoTree& tree() const { return tree_; }
  sim::EventSim* event_sim() { return sim_; }

  /// Mirrors Table-I activity into `registry`: per-edge byte counters
  /// ("bytes_moved.<src>-><dst>", host legs as "host"), move/alloc/
  /// release counts and fragmented-access totals under "dm.*". Storages
  /// bound afterwards get their own "storage.<name>.*" hooks attached.
  /// Pass nullptr to detach. The registry must outlive this manager.
  void attach_metrics(obs::MetricsRegistry* registry);
  obs::MetricsRegistry* metrics() { return metrics_; }

  /// Installs (or detaches, with nullptr) the wall-clock flight recorder:
  /// every Table-I move/alloc then also records a timestamped EventLog
  /// event (kMove with src/dst nodes and bytes, kIo for each file-backed
  /// leg, kAlloc) under the calling thread's current causal span. The log
  /// must outlive this manager.
  void set_event_log(obs::EventLog* log);
  obs::EventLog* event_log() { return elog_; }

  /// EventSim resource representing a node's copy/I-O engine (created on
  /// demand). Exposed so the device layer can serialize against it.
  sim::ResourceId resource_for(topo::NodeId node);

  // --- Resilience (northup::resil wiring). ---

  /// Installs (or detaches, with nullptr) the resilience layer: every
  /// Table-I operation's functional copy then runs under its retry
  /// policy, optional end-to-end checksums verify the moved bytes, and
  /// failures feed the per-node circuit breakers. The manager's trace
  /// hook is pointed at this manager's EventSim so retry/quarantine
  /// instants land on the right node track. Detached (the default),
  /// operations behave exactly as before. The manager must outlive every
  /// operation routed through it.
  void set_resilience(resil::ResilienceManager* resil);
  resil::ResilienceManager* resilience() { return resil_; }

  /// Health-derived capacity multiplier of `node` for chunk planning:
  /// 1.0 when healthy or without a resilience layer, smaller while the
  /// node's breaker degrades it, 0 while quarantined.
  double health_scale(topo::NodeId node) const {
    return resil_ != nullptr ? resil_->capacity_scale(node) : 1.0;
  }

  // --- Cache backend (northup::cache wiring). ---

  /// Installs (or detaches, with nullptr) the pool/cache backend. The
  /// backend must outlive every operation routed through it.
  void set_cache_backend(CacheBackend* backend) { backend_ = backend; }
  CacheBackend* cache_backend() { return backend_; }

  /// True when `node` has a ShardCache behind move_data_down_cached.
  bool has_shard_cache(topo::NodeId node) const {
    return backend_ != nullptr && backend_->caches(node);
  }

  /// Bytes on `node` held by unpinned cache entries, reclaimable on
  /// demand; planners add this to Storage::available() when sizing
  /// chunks so resident cache contents never shrink a decomposition.
  std::uint64_t reclaimable_bytes(topo::NodeId node) const {
    return backend_ != nullptr ? backend_->evictable_bytes(node) : 0;
  }

  /// Content-keyed move_data_down: returns a cache-owned, pinned shard at
  /// `child` holding src[src_offset, src_offset + size). A repeat request
  /// for the same source region is a hit — no bytes move and the EventSim
  /// is charged a zero-duration "cache"-phase task instead of a transfer.
  /// Pass the shard back through release_cached. Requires has_shard_cache
  /// and that `child` is a tree child of src's node.
  Buffer* move_data_down_cached(const Buffer& src, topo::NodeId child,
                                std::uint64_t size,
                                std::uint64_t src_offset = 0);

  /// 2-D variant: caches `rows` runs of `row_bytes` (source rows
  /// `src_pitch` apart) as one dense shard at `child`.
  Buffer* move_block_2d_down_cached(const Buffer& src, topo::NodeId child,
                                    std::uint64_t rows,
                                    std::uint64_t row_bytes,
                                    std::uint64_t src_offset,
                                    std::uint64_t src_pitch);

  /// Unpins a shard obtained from a cached download. `dirty` requests
  /// writeback of the shard to its source region on eviction/flush.
  void release_cached(Buffer* shard, bool dirty = false);

  // --- Table I surface. ---

  /// Allocates `size` bytes on `tree_node`; charges the setup cost.
  /// When the node would exceed its capacity and a cache backend manages
  /// it, unpinned cached shards are evicted to make room first; if the
  /// request still does not fit, throws util::CapacityError naming the
  /// node, the requested size, and the bytes remaining.
  Buffer alloc(std::uint64_t size, topo::NodeId tree_node);

  /// Releases the space and invalidates the handle.
  void release(Buffer& buffer);

  /// Moves `spec.size` bytes from `src`+src_offset to `dst`+dst_offset,
  /// dispatching on the two nodes' storage kinds. Updates dst.ready.
  void move_data(Buffer& dst, const Buffer& src, CopySpec spec);

  /// Table I's move_data_down: `dst` must live on a child of src's node.
  void move_data_down(Buffer& dst, const Buffer& src, CopySpec spec);

  /// Table I's move_data_up: `dst` must live on the parent of src's node.
  void move_data_up(Buffer& dst, const Buffer& src, CopySpec spec);

  /// Strided 2-D block move: copies `rows` runs of `row_bytes`, advancing
  /// the source by `src_pitch` and the destination by `dst_pitch` bytes
  /// per run (the dCopyBlockH2D/D2H of Listing 2, and the shard extraction
  /// of Fig 3). Charged as one transfer with `rows` accesses, which is
  /// what makes fragmented I/O slower than regular blocks (§V-B).
  void move_block_2d(Buffer& dst, const Buffer& src, std::uint64_t rows,
                     std::uint64_t row_bytes, std::uint64_t dst_offset,
                     std::uint64_t dst_pitch, std::uint64_t src_offset,
                     std::uint64_t src_pitch,
                     std::vector<sim::TaskId> extra_deps = {});

  /// Fills `size` bytes of the buffer with `value` (device-side memset).
  /// Charged as a write on the buffer's node.
  void fill(Buffer& dst, std::byte value, std::uint64_t size,
            std::uint64_t dst_offset = 0);

  // --- Host access (functional data entry/exit points). ---

  /// Copies host bytes into a buffer (e.g. problem initialization at the
  /// root). Charged as a write on the buffer's node.
  void write_from_host(Buffer& dst, const void* src, std::uint64_t size,
                       std::uint64_t dst_offset = 0);

  /// Copies buffer bytes out to host memory (e.g. result verification).
  void read_to_host(void* dst, const Buffer& src, std::uint64_t size,
                    std::uint64_t src_offset = 0);

  /// Zero-copy host view of a buffer whose backend exposes its bytes
  /// directly: HostStorage (DRAM/NVM always; device memory is also
  /// HostStorage-backed in the simulator and the view models the
  /// device-side mapping used by kernels) and MmapStorage (the view is
  /// the file's own mapped pages). Throws for copying file-backed nodes.
  /// In-place accesses through the view bypass read()/write(): call
  /// storage(node).note_access() when they should carry modeled cost.
  std::byte* host_view(const Buffer& buffer);

  /// Non-throwing host_view: nullptr when the buffer's backend cannot
  /// expose its bytes (copying FileStorage, fault-injection decorators).
  /// Lets planners choose a view leg over a staged copy per node.
  std::byte* try_host_view(const Buffer& buffer);

  const SetupCostModel& setup_costs() const { return setup_costs_; }
  void set_setup_costs(const SetupCostModel& costs) { setup_costs_ = costs; }

  /// Total bytes moved through move_data*/move_block_2d since construction.
  std::uint64_t bytes_moved() const {
    return bytes_moved_.load(std::memory_order_relaxed);
  }

 private:
  struct Leg {
    topo::NodeId resource_node;
    const char* phase;
    double seconds;
  };

  /// Classifies + costs a move and appends EventSim tasks; updates
  /// dst.ready. The access counts model per-side fragmentation: a strided
  /// region on a file-backed node costs one I/O call per fragment, while
  /// the contiguous side of the same move is a single request.
  void charge_move(Buffer& dst, const Buffer& src, std::uint64_t bytes,
                   std::uint64_t src_accesses, std::uint64_t dst_accesses,
                   const std::string& label,
                   std::vector<sim::TaskId> extra_deps);

  /// Performs the functional byte copy through a staging buffer. With
  /// checksum verification on, the source is read twice (a mismatch
  /// means the read path corrupted bytes) and the destination is read
  /// back after the write; either mismatch throws util::CorruptionError
  /// naming the offending side.
  void copy_bytes(Buffer& dst, const Buffer& src, std::uint64_t size,
                  std::uint64_t dst_offset, std::uint64_t src_offset);

  /// Routes `op` through the resilience layer's retry loop (attributing
  /// outcomes to `src`/`dst`), or runs it directly when detached.
  void run_guarded(topo::NodeId src, topo::NodeId dst,
                   const std::string& label,
                   const std::function<void()>& op);

  bool verify_enabled() const {
    return resil_ != nullptr && resil_->verify_checksums();
  }

  /// Counts a move that skipped the staging copy ("dm.zero_copy_moves").
  void note_zero_copy() {
    if (metrics_ != nullptr) {
      metrics_->counter("dm.zero_copy_moves").increment();
    }
  }

  void charge_setup(topo::NodeId node, double seconds,
                    const std::string& label, Buffer* buffer);

  /// Backend coherence hook: dst[offset, offset+size) was overwritten.
  void notify_written(const Buffer& dst, std::uint64_t offset,
                      std::uint64_t size);

  /// Per-edge traffic counter; "host" stands in for host memory on
  /// write_from_host/read_to_host legs.
  obs::Counter& edge_counter(const std::string& src_name,
                             const std::string& dst_name);

  /// Records the wall-clock kMove (+ per-file-side kIo) events for a move
  /// that started at `t0_ns` and just finished. obs::kNoNode on either
  /// side stands for host memory.
  void log_move(topo::NodeId src_node, topo::NodeId dst_node,
                std::uint64_t bytes, const std::string& label,
                std::uint64_t t0_ns);

  const topo::TopoTree& tree_;
  sim::EventSim* sim_;
  SetupCostModel setup_costs_;
  std::map<topo::NodeId, std::unique_ptr<mem::Storage>> storages_;
  mutable std::mutex resources_mu_;  ///< lazy resource_for registration
  std::map<topo::NodeId, sim::ResourceId> resources_;
  std::atomic<std::uint64_t> bytes_moved_{0};
  std::atomic<std::uint64_t> next_buffer_id_{1};
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::EventLog* elog_ = nullptr;
  std::uint32_t elog_io_phase_ = 0;        ///< interned "io"
  std::uint32_t elog_transfer_phase_ = 0;  ///< interned "transfer"
  CacheBackend* backend_ = nullptr;
  resil::ResilienceManager* resil_ = nullptr;
};

}  // namespace northup::data
