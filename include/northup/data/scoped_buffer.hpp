// RAII ownership for the untyped Table-I buffer handle.
//
// The raw Buffer is a plain handle: forgetting DataManager::release leaks
// node capacity, and an early exception (CapacityError mid-decomposition)
// skips every manual release after it. ScopedBuffer ties the release to
// scope exit, exactly like TypedBuffer does for the typed surface, while
// staying byte-oriented for code that moves untyped extents.
//
// Applications and tests should prefer ScopedBuffer; the raw Buffer plus
// manual release remains the runtime-internal currency (algos keep
// handles in containers and release mid-pipeline to free child capacity
// at precise points).
#pragma once

#include <utility>

#include "northup/data/data_manager.hpp"

namespace northup::data {

/// Move-only owner of one Buffer; calls DataManager::release on
/// destruction. Dereference (`*sb` / `sb->`) to reach the Buffer for the
/// Table-I calls.
class ScopedBuffer {
 public:
  ScopedBuffer() = default;

  /// Allocates `size` bytes on `node` (throws util::CapacityError when
  /// the node is full, like DataManager::alloc).
  ScopedBuffer(DataManager& dm, std::uint64_t size, topo::NodeId node)
      : dm_(&dm), buffer_(dm.alloc(size, node)) {}

  /// Adopts an already-allocated handle.
  ScopedBuffer(DataManager& dm, Buffer buffer) : dm_(&dm), buffer_(buffer) {}

  ScopedBuffer(ScopedBuffer&& other) noexcept
      : dm_(std::exchange(other.dm_, nullptr)),
        buffer_(std::exchange(other.buffer_, Buffer{})) {}

  ScopedBuffer& operator=(ScopedBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      dm_ = std::exchange(other.dm_, nullptr);
      buffer_ = std::exchange(other.buffer_, Buffer{});
    }
    return *this;
  }

  ScopedBuffer(const ScopedBuffer&) = delete;
  ScopedBuffer& operator=(const ScopedBuffer&) = delete;

  ~ScopedBuffer() { reset(); }

  /// Releases the storage now (idempotent).
  void reset() {
    if (dm_ != nullptr && buffer_.valid()) dm_->release(buffer_);
    dm_ = nullptr;
    buffer_ = Buffer{};
  }

  /// Relinquishes ownership: returns the handle without releasing it.
  Buffer detach() {
    dm_ = nullptr;
    return std::exchange(buffer_, Buffer{});
  }

  Buffer& get() { return buffer_; }
  const Buffer& get() const { return buffer_; }
  Buffer& operator*() { return buffer_; }
  const Buffer& operator*() const { return buffer_; }
  Buffer* operator->() { return &buffer_; }
  const Buffer* operator->() const { return &buffer_; }

  bool valid() const { return buffer_.valid(); }
  std::uint64_t size() const { return buffer_.size(); }
  topo::NodeId node() const { return buffer_.node; }

  /// Zero-copy view of the buffer's bytes (DataManager::host_view):
  /// HostStorage heap memory or MmapStorage's mapped file pages. Throws
  /// for copying file-backed nodes; valid until reset()/destruction.
  std::byte* view() { return dm_->host_view(buffer_); }

  /// Non-throwing view: nullptr when the node's backend cannot expose
  /// its bytes directly.
  std::byte* try_view() {
    return dm_ != nullptr && buffer_.valid() ? dm_->try_host_view(buffer_)
                                             : nullptr;
  }

 private:
  DataManager* dm_ = nullptr;
  Buffer buffer_;
};

/// Move-only owner of a pinned shard from a cached download
/// (DataManager::move_data_down_cached); unpins via release_cached on
/// destruction. The shard's storage stays owned by the cache — this type
/// only scopes the pin. Call set_dirty() before release to request
/// writeback of the shard to its source region.
class ScopedShard {
 public:
  ScopedShard() = default;

  /// Adopts a pinned shard returned by a cached download.
  ScopedShard(DataManager& dm, Buffer* shard) : dm_(&dm), shard_(shard) {}

  ScopedShard(ScopedShard&& other) noexcept
      : dm_(std::exchange(other.dm_, nullptr)),
        shard_(std::exchange(other.shard_, nullptr)),
        dirty_(std::exchange(other.dirty_, false)) {}

  ScopedShard& operator=(ScopedShard&& other) noexcept {
    if (this != &other) {
      reset();
      dm_ = std::exchange(other.dm_, nullptr);
      shard_ = std::exchange(other.shard_, nullptr);
      dirty_ = std::exchange(other.dirty_, false);
    }
    return *this;
  }

  ScopedShard(const ScopedShard&) = delete;
  ScopedShard& operator=(const ScopedShard&) = delete;

  ~ScopedShard() { reset(); }

  /// Unpins the shard now (idempotent), honoring set_dirty().
  void reset() {
    if (dm_ != nullptr && shard_ != nullptr) dm_->release_cached(shard_, dirty_);
    dm_ = nullptr;
    shard_ = nullptr;
    dirty_ = false;
  }

  /// Requests writeback of the shard on release/eviction.
  void set_dirty(bool dirty = true) { dirty_ = dirty; }

  Buffer* get() { return shard_; }
  const Buffer* get() const { return shard_; }
  Buffer& operator*() { return *shard_; }
  const Buffer& operator*() const { return *shard_; }
  Buffer* operator->() { return shard_; }
  const Buffer* operator->() const { return shard_; }

  bool valid() const { return shard_ != nullptr; }

 private:
  DataManager* dm_ = nullptr;
  Buffer* shard_ = nullptr;
  bool dirty_ = false;
};

}  // namespace northup::data
