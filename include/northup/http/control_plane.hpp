// The observability + job control plane mounted on HttpServer
// (ISSUE 10 tentpole): everything the system already measures, scraped
// live instead of written to files and inspected after the fact.
//
// Endpoints (full request/response contracts in docs/http.md):
//   GET    /metrics          Prometheus text, straight from the
//                            machine's MetricsRegistry (no file round
//                            trip; parses while jobs execute)
//   GET    /healthz          JSON: brownout level, breaker-state
//                            gauges, queue depth, active jobs/tenants
//   POST   /jobs             submit one JSON JobRequest or a batched
//                            {"jobs": [...]} array (admission amortized
//                            over the batch: one service lock pass)
//   GET    /jobs             ids of every registered job
//   GET    /jobs/{id}        status/result snapshot (result_hash as a
//                            hex string once done)
//   DELETE /jobs/{id}        cancel; queued jobs terminate immediately
//   GET    /jobs/{id}/events Server-Sent Events stream of state
//                            transitions, final event carries the full
//                            result (typed rejection reasons included)
//   GET    /timeseries       {"northup_serve": 1, ...} MetricsSampler
//                            ring-buffer series (bounded history)
//   GET    /trace            live Chrome trace of the job interleaving
//                            (open in Perfetto; linked from the
//                            dashboard for any completed job)
//   GET    /dashboard        self-contained HTML page polling
//                            /timeseries + /healthz, sparkline render
//   GET    /                 302 -> /dashboard
#pragma once

#include <cstdint>
#include <string>

#include "northup/http/server.hpp"
#include "northup/obs/sampler.hpp"
#include "northup/svc/service.hpp"
#include "northup/util/json.hpp"

namespace northup::http {

struct ControlPlaneOptions {
  /// Granularity at which an SSE stream re-checks for state changes /
  /// client disconnect when no transition wakes it.
  int sse_poll_ms = 100;
  /// An SSE stream of a job that never finishes ends after this long
  /// (the client reconnects); keeps stuck watchers from pinning server
  /// workers forever.
  double sse_max_seconds = 60.0;
  bool enable_dashboard = true;
};

/// Binds a JobService (+ optional MetricsSampler for /timeseries) to an
/// HttpServer. The ControlPlane must outlive the server.
class ControlPlane {
 public:
  ControlPlane(svc::JobService& service, obs::MetricsSampler* sampler,
               ControlPlaneOptions options = {});

  /// Registers every endpoint. Call before server.start().
  void mount(HttpServer& server);

  /// Parses one job object ({"kind": "gemm", "config": {...}, ...}).
  /// Throws util::Error on unknown kinds or malformed fields — the same
  /// path `northup-serve --run-once` uses, so an HTTP submission and an
  /// in-process run of the same spec are bit-identical by construction.
  static svc::JobRequest parse_job_request(const util::json::Value& spec);

  /// One job's status/result snapshot as JSON (see docs/http.md).
  static std::string job_json(std::uint64_t id, const svc::JobHandle& handle);

  std::string healthz_json() const;
  std::string timeseries_json() const;

 private:
  void handle_submit(const Request& request, ResponseWriter& w);
  void handle_job_events(const Request& request, ResponseWriter& w);

  svc::JobService& service_;
  obs::MetricsSampler* sampler_;
  ControlPlaneOptions options_;
};

/// The embedded dashboard page (no external assets; see
/// src/http/dashboard.cpp).
const char* dashboard_html();

}  // namespace northup::http
