// northup::http — a small dependency-free embedded HTTP/1.1 server
// (ISSUE 10 tentpole): the system's first network-facing surface,
// carrying the observability + job control plane.
//
// Shape (the ExpressionMatrix2 lesson: a tiny in-tree HttpServer is
// enough to build a whole live UI on):
//   * one blocking accept-loop thread owns the listening socket;
//   * each accepted connection becomes a task on a
//     sched::WorkStealingPool — the same substrate every other
//     concurrent component of the runtime runs on — which serves
//     keep-alive requests in a poll()-bounded loop;
//   * handlers are registered per (method, path pattern); patterns may
//     capture segments: "/jobs/{id}" binds request.params["id"];
//   * a handler either fills in a buffered response (status + headers +
//     body, Content-Length framing) or calls begin_stream() and writes
//     raw chunks — the Server-Sent-Events path (Connection: close
//     framing, flushed per write so watchers see events live);
//   * stop() is graceful: the listener closes, in-flight connections are
//     shut down, and the worker pool drains before stop() returns.
//
// Security posture: binds 127.0.0.1 by default, no TLS, no auth — an
// operator-local observability port, not an internet-facing one. See
// docs/http.md before changing bind_address.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "northup/obs/metrics.hpp"
#include "northup/sched/pool.hpp"

namespace northup::http {

struct Request {
  std::string method;  ///< upper-case ("GET", "POST", "DELETE", ...)
  std::string target;  ///< raw request-target as received
  std::string path;    ///< percent-decoded path, query stripped
  std::map<std::string, std::string> query;    ///< decoded query pairs
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::map<std::string, std::string> params;   ///< route {name} captures
  std::string body;
};

/// One response, buffered by default. Streaming (SSE) responses call
/// begin_stream() once and then write_chunk() per event.
class ResponseWriter {
 public:
  /// Buffered mode: status + headers + body are sent (with a computed
  /// Content-Length) after the handler returns.
  void set_status(int code) { status_ = code; }
  void set_header(const std::string& name, const std::string& value);
  void write(std::string body) { body_ = std::move(body); }

  /// Convenience: status + Content-Type + body in one call.
  void reply(int code, const std::string& content_type, std::string body);

  /// Switches to streaming: sends the status line and headers now
  /// (Connection: close framing) and returns true when the peer is still
  /// there. Headers set before the call are included.
  bool begin_stream();

  /// Streaming mode only: writes `data` straight to the socket. Returns
  /// false once the peer has gone away (handlers should stop).
  bool write_chunk(const std::string& data);

  bool streaming() const { return streaming_; }
  int status() const { return status_; }

 private:
  friend class HttpServer;
  explicit ResponseWriter(int fd) : fd_(fd) {}

  bool send_all(const char* data, std::size_t len);

  int fd_ = -1;
  int status_ = 200;
  std::vector<std::pair<std::string, std::string>> headers_;
  std::string body_;
  bool streaming_ = false;
  bool peer_gone_ = false;
};

using Handler = std::function<void(const Request&, ResponseWriter&)>;

struct ServerOptions {
  /// Local-only by default (see the security note in docs/http.md).
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read the choice back via port().
  std::uint16_t port = 0;
  /// Connection-serving pool threads = max concurrently served
  /// connections (an SSE stream holds one for its lifetime).
  std::size_t workers = 4;
  /// Requests larger than this (headers + body) get 413 and the
  /// connection closed.
  std::size_t max_request_bytes = 1 << 20;
  /// Keep-alive connections idle longer than this are closed; also the
  /// granularity at which blocked connections notice stop().
  int idle_timeout_ms = 5000;
  /// Requests served per connection before an orderly close.
  int max_keepalive_requests = 1000;
};

class HttpServer {
 public:
  /// `metrics` (optional) receives http.* counters/gauges: requests,
  /// responses by class, active connections, bytes out, SSE streams.
  explicit HttpServer(ServerOptions options = {},
                      obs::MetricsRegistry* metrics = nullptr);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for `method` + `pattern`. Patterns are literal
  /// paths whose "{name}" segments capture into Request::params. Call
  /// before start().
  void handle(const std::string& method, const std::string& pattern,
              Handler handler);

  /// Binds, listens, and starts the accept loop. Throws util::Error
  /// naming address and port when the bind fails.
  void start();

  /// Graceful shutdown: stops accepting, shuts down open connections,
  /// drains the worker pool. Idempotent; also run by the destructor.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The bound port (the ephemeral choice when options.port was 0).
  /// Valid after start().
  std::uint16_t port() const { return port_; }
  const ServerOptions& options() const { return options_; }
  /// "http://<bind_address>:<port>".
  std::string url() const;

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;  ///< "{name}" entries capture
    Handler handler;
  };

  void accept_loop();
  void serve_connection(int fd);
  /// Reads one request off `fd`. Returns 0 on success, -1 on EOF/error
  /// (close silently), or an HTTP status code to reply with.
  int read_request(int fd, Request& out);
  const Route* match(const Request& request, bool& path_seen,
                     std::map<std::string, std::string>& params) const;
  void finish_response(const Request& request, ResponseWriter& w);
  void note_response(int status);

  ServerOptions options_;
  obs::MetricsRegistry* metrics_ = nullptr;
  std::vector<Route> routes_;

  // Written by start()/stop() while accept_loop() reads it for accept().
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::unique_ptr<sched::WorkStealingPool> pool_;

  std::mutex conns_mu_;
  std::set<int> conns_;
};

/// Percent-decodes `s` ("%2F" -> '/', '+' -> ' '); malformed escapes
/// pass through literally.
std::string url_decode(const std::string& s);

}  // namespace northup::http
