// In-order command stream — the OpenCL/CUDA-stream overlap optimization
// the paper applies at the leaf node (§III-C): "Data transfer optimization
// is further made for overlapping computation and communications (i.e.,
// OpenCL/CUDA streams) at the leaf node."
//
// A Stream serializes the operations submitted *to it* while letting
// operations on different streams overlap (they occupy different EventSim
// resources: the DMA engine vs. the processor's compute units). Classic
// double-buffering — copy chunk i+1 while computing chunk i — falls out of
// using two streams or of the buffers' ready-task chaining.
#pragma once

#include <string>
#include <vector>

#include "northup/data/data_manager.hpp"
#include "northup/device/processor.hpp"

namespace northup::device {

/// An in-order queue of copies and kernel launches.
class Stream {
 public:
  Stream(Processor& processor, data::DataManager& dm, std::string name);

  /// Enqueues a copy; ordered after everything previously enqueued here.
  void copy(data::Buffer& dst, const data::Buffer& src, std::uint64_t size,
            std::uint64_t dst_offset = 0, std::uint64_t src_offset = 0);

  /// Enqueues a kernel launch on this stream's processor. The kernel runs
  /// functionally at submission (the simulator is synchronous); its sim
  /// task is ordered after prior stream work plus `input_ready` tasks.
  LaunchResult launch(const std::string& label, std::uint32_t num_groups,
                      const KernelFn& kernel, const KernelCost& cost,
                      std::vector<sim::TaskId> input_ready = {});

  /// Task id of the most recently enqueued operation (kInvalidTask when
  /// the stream is empty or no EventSim is attached).
  sim::TaskId last() const { return last_; }

  /// Makes the next operation additionally wait for `task`
  /// (cross-stream event, cl_event-style).
  void wait(sim::TaskId task);

  const std::string& name() const { return name_; }

 private:
  /// Collects `extra` + the stream's last op + any wait()ed events, and
  /// clears the pending wait list.
  std::vector<sim::TaskId> chain_deps(std::vector<sim::TaskId> extra);

  Processor& processor_;
  data::DataManager& dm_;
  std::string name_;
  sim::TaskId last_ = sim::kInvalidTask;
  std::vector<sim::TaskId> pending_waits_;
};

}  // namespace northup::device
