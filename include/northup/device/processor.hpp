// Simulated processors — the leaf compute engines of the Northup tree.
//
// The paper runs OpenCL kernels on an APU GPU and a discrete FirePro GPU
// (§V-A). This machine has neither, so per the substitution plan
// (DESIGN.md §2) a processor here is a *functional* simulator: a kernel is
// a C++ callable invoked once per workgroup with a WorkGroupCtx (group id,
// a real local-memory arena), so results are bit-exact and testable. The
// execution *cost* charged into the EventSim comes from the processor's
// RooflineModel plus an occupancy penalty for launches too small to fill
// the compute units — which reproduces the paper's observation that
// "overly fine-grained problem decomposition results in many calls and low
// hardware utilization" (§V-B).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "northup/obs/event_log.hpp"
#include "northup/sched/pool.hpp"
#include "northup/sim/event_sim.hpp"
#include "northup/topo/tree.hpp"
#include "northup/util/aligned.hpp"

namespace northup::device {

/// The EventSim phase key for a processor type ("cpu"/"gpu").
const char* phase_for(topo::ProcessorType type);

/// Per-workgroup execution context. `local_mem` is a real scratchpad
/// arena (the GPU's local / CUDA shared memory); contents are undefined
/// at workgroup start, as on hardware.
struct WorkGroupCtx {
  std::uint32_t group_id = 0;
  std::uint32_t group_count = 1;
  std::byte* local_mem = nullptr;
  std::uint64_t local_mem_bytes = 0;

  template <typename T>
  T* local_array(std::uint64_t count, std::uint64_t byte_offset = 0) {
    NU_CHECK(byte_offset + count * sizeof(T) <= local_mem_bytes,
             "local memory overflow");
    return reinterpret_cast<T*>(local_mem + byte_offset);
  }
};

/// Kernel body: called once per workgroup.
using KernelFn = std::function<void(WorkGroupCtx&)>;

/// Roofline inputs for one launch: total work, not per-workgroup.
struct KernelCost {
  double flops = 0.0;
  double bytes = 0.0;  ///< device-memory traffic (reads + writes)
};

/// Result of a launch: the EventSim task (kInvalidTask when no sim is
/// attached) and the model-derived duration.
struct LaunchResult {
  sim::TaskId task = sim::kInvalidTask;
  double sim_seconds = 0.0;
};

/// One leaf processor (CPU, GPU, or FPGA) with its own compute resource
/// in the EventSim, so kernels on different processors overlap and kernels
/// on one processor serialize — matching a per-device in-order queue.
class Processor {
 public:
  /// `sim` may be null (functional-only execution).
  Processor(topo::ProcessorInfo info, sim::EventSim* sim);

  const topo::ProcessorInfo& info() const { return info_; }
  topo::ProcessorType type() const { return info_.type; }
  const std::string& name() const { return info_.name; }
  sim::ResourceId resource() const { return resource_; }

  /// Executes `kernel` for `num_groups` workgroups (serially, functional)
  /// and charges one roofline-costed task depending on `deps`.
  LaunchResult launch(const std::string& label, std::uint32_t num_groups,
                      const KernelFn& kernel, const KernelCost& cost,
                      std::vector<sim::TaskId> deps = {});

  /// Cost-only variant: charges the task without running a body. Used by
  /// schedulers replaying profiles (§III-E task-processor mapping).
  LaunchResult launch_costed(const std::string& label,
                             std::uint32_t num_groups, const KernelCost& cost,
                             std::vector<sim::TaskId> deps = {});

  /// Occupancy factor in (0, 1]: launches with fewer workgroups than
  /// 2 x compute_units cannot fill the machine.
  double occupancy(std::uint32_t num_groups) const;

  /// Model-derived duration of a launch (without submitting it).
  double kernel_seconds(std::uint32_t num_groups,
                        const KernelCost& cost) const;

  /// Number of kernels launched so far (for the <1% overhead accounting).
  std::uint64_t launch_count() const {
    return launch_count_.load(std::memory_order_relaxed);
  }

  /// Executes workgroups on `pool` instead of serially on the calling
  /// thread. Workgroups are independent on real hardware, so kernels must
  /// already tolerate any interleaving; each concurrent group gets its
  /// own local-memory arena. Pass nullptr to restore serial execution.
  /// Virtual-time costing is unaffected (it never depended on host
  /// execution order).
  void set_parallel_executor(sched::WorkStealingPool* pool) { pool_ = pool; }
  sched::WorkStealingPool* parallel_executor() const { return pool_; }

  /// Wall-clock flight recorder (nullptr detaches): each launch()'s
  /// functional pass is recorded as a kCompute event on `node` (the tree
  /// node this processor is attached to) under the caller's span. The log
  /// must outlive the processor.
  void set_event_log(obs::EventLog* log, std::uint32_t node) {
    elog_ = log;
    elog_node_ = node;
    if (elog_ != nullptr) {
      elog_phase_ = elog_->intern(phase_for(info_.type));
    }
  }

 private:
  topo::ProcessorInfo info_;
  sim::EventSim* sim_;
  sim::ResourceId resource_ = 0;
  util::AlignedBuffer local_mem_;
  /// One kernel at a time per processor, as on hardware: concurrent
  /// launch() calls from exec::TaskGraph workers serialize here (the
  /// serial functional pass shares the local_mem_ arena).
  std::mutex launch_mu_;
  std::atomic<std::uint64_t> launch_count_{0};
  sched::WorkStealingPool* pool_ = nullptr;
  obs::EventLog* elog_ = nullptr;
  std::uint32_t elog_node_ = obs::kNoNode;
  std::uint32_t elog_phase_ = 0;
};

}  // namespace northup::device
