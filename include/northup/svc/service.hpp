// northup::svc — the multi-tenant job service (the tentpole subsystem).
//
// JobService turns the single-shot Northup runtime into a job server:
// tenants submit JobRequests (one of the three case-study algorithms plus
// service attributes), an AdmissionController reserves each job's byte
// footprint against the shared machine's per-node BufferPools, and a
// JobScheduler (FIFO or weighted-fair) dispatches admitted jobs onto one
// sched::WorkStealingPool.
//
// Concurrency model: core::Runtime is not thread-safe, so the shared
// "machine" Runtime is used purely as the capacity ledger (its pools'
// pinned bytes are the outstanding reservations and nothing else ever
// allocates there) while every admitted job executes on a *private*
// Runtime whose node capacities equal its admission grant. Concurrent
// jobs therefore genuinely partition the machine: more co-runners ->
// smaller grants -> smaller blocks -> more I/O per job — and each job's
// numerical result is identical to a serial run by construction.
//
// Lifecycle and reliability: a still-queued job can be cancelled or can
// expire at its deadline; a job whose attempt dies with util::IoError
// (e.g. under memsim fault injection) is retried up to max_retries times,
// each attempt on a fresh runtime. Queue-wait, execution, and end-to-end
// latency land in obs::Histogram metrics (svc.latency.*), queue depth and
// reservations in gauges, and the real-time interleaving of every job in
// a JobTraceRecorder Chrome trace.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "northup/core/runtime.hpp"
#include "northup/plan/feasibility.hpp"
#include "northup/sched/pool.hpp"
#include "northup/svc/admission.hpp"
#include "northup/svc/job.hpp"
#include "northup/svc/job_trace.hpp"
#include "northup/svc/overload.hpp"
#include "northup/svc/scheduler.hpp"
#include "northup/topo/presets.hpp"

namespace northup::svc {

struct ServiceOptions {
  /// Capacities/models of the shared machine; also the template for the
  /// per-job runtimes (which shrink these capacities to the grant).
  topo::PresetOptions machine;
  /// 2 = apu_two_level (storage -> DRAM+APU), 3 = dgpu_three_level
  /// (storage -> DRAM -> GPU memory).
  int machine_levels = 3;
  mem::StorageKind file_kind = mem::StorageKind::Ssd;
  /// Worker threads executing jobs (= max truly concurrent jobs).
  std::size_t workers = 2;
  /// Bounded queue: submit() blocks and try_submit() rejects when this
  /// many jobs are already queued (backpressure).
  std::size_t max_queue_depth = 16;
  SchedulingPolicy policy = SchedulingPolicy::WeightedFair;
  /// Shard cache inside the per-job runtimes (ablation knob for the
  /// bench; the machine ledger always has pools).
  bool enable_shard_cache = true;
  /// EventSim in the per-job runtimes (virtual-time stats in JobResult).
  bool enable_sim = true;
  std::string file_dir;  ///< dir for job file-backed roots ("" = temp)
  /// Resilience configuration of the per-job runtimes: chunk retry
  /// policy, end-to-end checksums, breaker tuning. Per-attempt resil
  /// counters are folded into the machine metrics and the JobResult.
  resil::ResilOptions resilience;
  /// Overload control between submission and admission: per-tenant
  /// token-bucket rate limiting, deadline-feasibility rejection,
  /// CoDel-style load shedding, and the brownout degradation ladder.
  /// Disabled by default (overload.enable = false).
  OverloadOptions overload;
  /// Pace the per-job runtimes' file-backed storage on the wall clock
  /// (core::RuntimeOptions::paced_storage): job execution time then
  /// tracks the *modeled* storage tier, which is what the overload
  /// bench and the deadline-race tests need to be measurable.
  bool paced_storage = false;
  /// Terminal jobs kept findable by id (find_job) after completion, so
  /// an HTTP client can fetch the result of a job it polled. Oldest
  /// finished jobs are evicted past this bound; live jobs never are.
  std::size_t max_finished_jobs = 1024;
};

class JobService;

/// The caller's view of one submitted job. Cheap to copy; valid() is
/// false only for default-constructed handles.
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const { return control_ != nullptr; }
  std::uint64_t id() const { return control_ ? control_->id : 0; }
  const std::string& name() const { return control_->request.name; }

  /// Current state (racy by nature; stable once done()).
  JobState state() const;
  bool done() const;
  const JobRequest& request() const { return control_->request; }

  /// Point-in-time copy of the result so far: state (+ granted footprint
  /// once Running, everything once terminal). Safe while the job runs —
  /// unlike result(), which requires done().
  JobResult snapshot() const;

  /// Blocks until the state differs from `last` (or the job is done, or
  /// `timeout` elapses) and returns the current state. The long-poll
  /// primitive behind the SSE job-event stream.
  JobState wait_for_change(JobState last,
                           std::chrono::milliseconds timeout) const;

  /// Blocks until the job reaches a terminal state, then returns the
  /// result (also available via result() afterwards).
  const JobResult& wait() const;
  const JobResult& result() const;

  /// Requests cancellation: a queued job terminates Cancelled right
  /// away; a running job stops before its next retry attempt. Returns
  /// false when the job had already reached a terminal state.
  bool cancel();

 private:
  friend class JobService;
  JobHandle(std::shared_ptr<JobControl> control, JobService* service)
      : control_(std::move(control)), service_(service) {}

  std::shared_ptr<JobControl> control_;
  JobService* service_ = nullptr;
};

class JobService {
 public:
  explicit JobService(ServiceOptions options = {});

  /// Drains: blocks until every queued and running job is terminal.
  ~JobService();

  JobService(const JobService&) = delete;
  JobService& operator=(const JobService&) = delete;

  /// Submits a job, blocking while the queue is full (backpressure).
  /// Jobs whose floor footprint can never fit are Rejected immediately
  /// with a CapacityError-style reason in result().error.
  JobHandle submit(JobRequest request);

  /// Non-blocking variant: a full queue yields a Rejected handle with a
  /// "queue full" error instead of blocking.
  JobHandle try_submit(JobRequest request);

  /// Non-blocking batch submit: every request is admitted (or rejected)
  /// under ONE service-lock acquisition followed by ONE dispatch scan,
  /// amortizing admission cost across the batch — the path behind
  /// batched `POST /jobs` arrays. Handles come back in request order.
  std::vector<JobHandle> try_submit_batch(std::vector<JobRequest> requests);

  /// Blocks until no job is queued or running.
  void wait_all();

  /// Re-evaluates the pending set right now (expiry + admission). The
  /// service kicks itself at every submit/completion/cancel; call this
  /// after interacting with the admission ledger directly (tests, an
  /// external capacity governor).
  void kick();

  std::size_t queue_depth() const;
  std::size_t running_count() const;

  /// Active (queued + running) jobs — the `svc.jobs.active` gauge's
  /// value, maintained incrementally so callers (and `/healthz`) don't
  /// have to diff cumulative counters.
  std::size_t job_count() const;
  /// Distinct tenants with at least one active job.
  std::size_t active_tenants() const;

  /// The job with id `id`, or an invalid handle when the id was never
  /// issued or the finished job aged out of the retention window
  /// (ServiceOptions::max_finished_jobs).
  JobHandle find_job(std::uint64_t id);
  /// Ids of every registered job, ascending (active + retained finished).
  std::vector<std::uint64_t> job_ids() const;

  SchedulingPolicy policy() const { return scheduler_.policy(); }
  const ServiceOptions& options() const { return options_; }

  /// The shared machine (capacity ledger + service metrics registry).
  core::Runtime& machine() { return *machine_; }
  obs::MetricsRegistry& metrics() { return machine_->metrics(); }
  AdmissionController& admission() { return admission_; }
  /// Overload-control state (brownout level, rate limiter). Reads are
  /// racy by nature; tests drive it via kick() dispatch points.
  const OverloadController& overload() const { return overload_; }
  /// Admission-time cost estimator over the machine profile.
  const plan::FeasibilityEstimator& feasibility() const {
    return feasibility_;
  }

  /// Chrome trace of the real-time job interleaving (one pid per tenant,
  /// one tid per job). See JobTraceRecorder.
  JobTraceRecorder& job_trace() { return trace_; }
  void write_job_trace(const std::string& path) { trace_.write_file(path); }
  void write_metrics_json(const std::string& path) {
    machine_->write_metrics_json(path);
  }

 private:
  friend class JobHandle;

  topo::TopoTree make_tree(const topo::PresetOptions& preset) const;
  JobHandle submit_impl(JobRequest request, bool blocking);

  /// Lock-free prologue of submission: metrics + footprint/work
  /// estimation, shared by the single and batch paths.
  std::shared_ptr<JobControl> make_control(JobRequest request);

  /// Admission-checks and enqueues one prepared job under `lock` (which
  /// must hold mu_ and is released/reacquired only by the blocking
  /// backpressure wait). Does NOT dispatch — callers batch the
  /// dispatch_locked() scan.
  JobHandle enqueue_impl(std::shared_ptr<JobControl> job, bool blocking,
                         std::unique_lock<std::mutex>& lock);

  /// Builds the feasibility estimator from the overload options'
  /// profile (or the machine tree's declared models).
  plan::FeasibilityEstimator make_feasibility() const;

  /// Publishes a typed rejection (state = Rejected, reason + counters).
  /// The job must not be in the pending set.
  JobHandle reject(std::shared_ptr<JobControl> job, RejectReason reason,
                   const std::string& error);

  /// Scans the pending set in policy order from a dispatch point
  /// (submission / completion / cancellation): updates overload
  /// pressure, sheds per the CoDel law (least-preferred first), expires
  /// deadline-passed jobs, drops cancelled ones, reserves capacity
  /// (brownout-scaled preferred) and dispatches what fits. Under FIFO a
  /// non-fitting head blocks everything behind it.
  void dispatch_locked();

  /// Sheds pending jobs while the overload controller's CoDel law says
  /// so, least-preferred first (lowest priority, most over-quota
  /// tenant). Requires mu_.
  void shed_locked();

  /// Executes one admitted job on a worker thread: attempt loop with a
  /// fresh grant-sized Runtime per attempt, fault-plan arming, IoError
  /// retry, then result publication and a re-dispatch.
  void run_job(std::shared_ptr<JobControl> job, JobFootprint granted);

  /// Publishes a terminal state for a job that never ran. Requires mu_.
  void finalize_unrun_locked(const std::shared_ptr<JobControl>& job,
                             JobState state, const std::string& error);

  bool cancel(const std::shared_ptr<JobControl>& job);

  ServiceOptions options_;
  std::unique_ptr<core::Runtime> machine_;
  AdmissionController admission_;
  plan::FeasibilityEstimator feasibility_;
  OverloadController overload_;
  JobTraceRecorder trace_;
  sched::WorkStealingPool pool_;

  /// Registers the job in the id index (and, when already terminal,
  /// the finished-retention queue). Requires mu_.
  void register_job_locked(const std::shared_ptr<JobControl>& job);

  /// Accounting when an *enqueued* job reaches a terminal state: active
  /// count/tenant map, svc.jobs.active gauge, finished retention.
  /// Requires mu_. Idempotence is the caller's responsibility — each
  /// terminal publication path runs exactly once per job.
  void note_terminal_locked(const std::shared_ptr<JobControl>& job);

  /// Updates the svc.jobs.active gauge from active_jobs_. Requires mu_.
  void update_active_gauge_locked();

  mutable std::mutex mu_;  ///< guards scheduler_, counters below
  JobScheduler scheduler_;
  std::condition_variable queue_space_cv_;  ///< signalled when depth drops
  std::condition_variable drain_cv_;        ///< signalled toward wait_all
  std::size_t running_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  double queue_high_water_ = 0.0;

  /// Id-keyed registry: every submitted job (including rejected ones)
  /// until terminal jobs age out of the retention bound.
  std::map<std::uint64_t, std::shared_ptr<JobControl>> jobs_;
  std::vector<std::uint64_t> finished_order_;  ///< eviction order (FIFO)
  std::size_t active_jobs_ = 0;                ///< queued + running
  std::map<std::string, std::size_t> active_by_tenant_;
};

}  // namespace northup::svc
