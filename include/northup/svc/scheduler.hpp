// Job states, the per-job control block, and the dispatch-order policy.
//
// The scheduler is deliberately passive: it owns the pending set and the
// tenants' weighted-fair virtual clocks and answers "in which order
// should the service try to admit what's waiting?". The JobService
// drives it under its own lock (submission, completion, and cancellation
// are the only dispatch points — no timer thread), dispatching admitted
// jobs onto the shared sched::WorkStealingPool.
//
// Policies:
//   * Fifo — strict arrival order with head-of-line blocking: if the
//     oldest job does not fit the remaining capacity, nothing younger
//     may overtake it. The baseline every queueing system starts from.
//   * WeightedFair — start-time fair queueing over tenants (the
//     nested-dataflow scheduler literature's fairness applied at job
//     granularity): order by priority, then by the tenant's virtual
//     time (accumulated service seconds / weight), and backfill past
//     jobs that do not currently fit.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "northup/algos/common.hpp"
#include "northup/svc/job.hpp"

namespace northup::svc {

enum class JobState {
  Queued,     ///< admitted to the queue, waiting for capacity
  Running,    ///< dispatched onto the worker pool
  Done,       ///< completed successfully
  Failed,     ///< ran and raised a non-retryable (or retry-exhausted) error
  Rejected,   ///< refused: see JobResult::reject for the typed reason
  Cancelled,  ///< cancelled while queued (or between retry attempts)
  Expired,    ///< deadline passed while still queued
};

const char* state_name(JobState state);

/// Why a job ended Rejected. Every rejection increments the matching
/// `svc.rejected.<reason>` counter, so per-reason counters always sum to
/// submitted − admitted-to-run jobs.
enum class RejectReason {
  None,                ///< the job was not rejected
  QueueFull,           ///< bounded queue at max_queue_depth (try_submit)
  RateLimited,         ///< tenant token bucket out of byte tokens
  InfeasibleDeadline,  ///< deadline_s < lower-bound exec estimate
  Shed,                ///< load shedding dropped it from the queue
  FootprintTooLarge,   ///< floor footprint exceeds a node's total capacity
};

const char* reason_name(RejectReason reason);

struct JobResult {
  JobState state = JobState::Queued;
  RejectReason reject = RejectReason::None;  ///< set when state == Rejected
  std::string error;        ///< for Failed / Rejected / Expired
  algos::RunStats stats;    ///< valid when state == Done
  double queue_wait_s = 0.0;
  double latency_s = 0.0;   ///< submission -> completion (end-to-end)
  std::uint32_t attempts = 0;
  /// Chunk-level transfer retries the data plane absorbed (resil layer);
  /// faults recovered here never cost a whole-job attempt.
  std::uint64_t chunk_retries = 0;
  /// End-to-end checksum mismatches the data plane detected (and, when
  /// the job completed, repaired by re-transfer).
  std::uint64_t corruptions = 0;
  JobFootprint granted;     ///< the admission grant the job ran under
};

/// Shared mutable state of one submitted job. The service publishes the
/// result exactly once under `mu` and wakes `cv`; JobHandle::wait blocks
/// on that.
struct JobControl {
  JobRequest request;
  JobKind kind = JobKind::Gemm;
  std::uint64_t id = 0;
  std::uint64_t seq = 0;  ///< arrival order (FIFO key)
  JobFootprint preferred;
  JobFootprint floor;
  plan::WorkEstimate work;  ///< rate-limit cost + feasibility input
  std::chrono::steady_clock::time_point submit_time;
  std::atomic<bool> cancel_requested{false};

  mutable std::mutex mu;
  mutable std::condition_variable cv;
  bool done = false;
  JobResult result;
};

enum class SchedulingPolicy { Fifo, WeightedFair };

const char* policy_name(SchedulingPolicy policy);

/// Pending-set ordering. NOT internally synchronized — the JobService
/// serializes all access under its dispatch lock.
class JobScheduler {
 public:
  explicit JobScheduler(SchedulingPolicy policy) : policy_(policy) {}

  SchedulingPolicy policy() const { return policy_; }

  void enqueue(std::shared_ptr<JobControl> job);

  /// Removes a specific pending job (dispatch, cancellation, expiry).
  /// Returns false when it is not pending (already dispatched).
  bool erase(const JobControl* job);

  std::size_t depth() const { return pending_.size(); }

  /// Pending jobs in dispatch-preference order (a copy; callers mutate
  /// the pending set while iterating).
  std::vector<std::shared_ptr<JobControl>> ordered() const;

  /// True when the policy forbids admitting anything behind a job that
  /// does not fit (FIFO head-of-line blocking).
  bool head_of_line_blocking() const {
    return policy_ == SchedulingPolicy::Fifo;
  }

  /// Weighted-fair bookkeeping: charges `seconds` of service to
  /// `tenant`'s virtual clock at the given weight. No-op under FIFO.
  void charge(const std::string& tenant, double weight, double seconds);

  double virtual_time(const std::string& tenant) const;

 private:
  SchedulingPolicy policy_;
  std::vector<std::shared_ptr<JobControl>> pending_;  ///< arrival order
  std::map<std::string, double> virtual_time_;        ///< per tenant
};

}  // namespace northup::svc
