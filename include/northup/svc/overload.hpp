// Overload control for the job service (ISSUE 9 tentpole).
//
// The admission controller (PR 3) protects *capacity*: a job only runs
// when its footprint fits the ledger. Nothing protected the service from
// *sustained overload* — a burst past saturation just fills the bounded
// queue, blocks producers, blows deadlines, and collapses goodput. This
// layer sits between submission and admission and steers demand to fit
// observed capacity, the service-plane analogue of capacity-aware
// placement across memory tiers (arXiv:2110.02150):
//
//   * Per-tenant token-bucket rate limiting, cost charged in estimated
//     job bytes (the bytes the job will pull through the hierarchy), so
//     one tenant's burst cannot monopolize the queue. Typed rejection:
//     RejectReason::RateLimited.
//   * CoDel-style load shedding: when the *oldest pending job's wait*
//     stays above the target queue delay for a full interval, the
//     service sheds the least-preferred pending work (lowest priority,
//     then the most over-quota tenant by weighted-fair virtual time)
//     at an interval that shrinks with sqrt(shed count) — the classic
//     CoDel control law — instead of blocking or delaying everyone.
//   * Brownout degradation ladder, driven by the same pressure signal
//     plus reserved-byte pressure on the admission ledger: before any
//     paid traffic is shed, grants shrink toward floor footprints
//     (level 1) and then optional end-to-end checksums are disabled
//     (level 2); shedding is reserved for level 3. Pressure clearing
//     steps the ladder back down after a dwell time.
//
// Deadline-feasibility rejection (the fourth leg) lives in the
// JobService itself on top of plan::FeasibilityEstimator; this header
// only carries its knobs. All OverloadController methods are called
// under the service's dispatch lock — the class is not internally
// synchronized (the token buckets and CoDel state are plain members).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "northup/obs/metrics.hpp"
#include "northup/plan/machine_profile.hpp"

namespace northup::svc {

/// Per-tenant rate-limit override (zero fields inherit the defaults).
struct TenantLimit {
  double rate_bytes_per_s = 0.0;  ///< sustained admission rate in job bytes
  double burst_bytes = 0.0;       ///< bucket capacity (max burst)
};

/// Knobs of the overload-control layer. Defaults keep every behavior off
/// (`enable = false`) so existing services are untouched.
struct OverloadOptions {
  bool enable = false;

  // --- Rate limiting (token bucket per tenant, cost in job bytes). ---
  /// Sustained per-tenant rate; 0 = unlimited (buckets never reject).
  double default_rate_bytes_per_s = 0.0;
  /// Bucket capacity. A single job costing more than its tenant's burst
  /// can never pass the limiter and is rejected with that detail.
  double default_burst_bytes = 64.0 * (1 << 20);
  std::map<std::string, TenantLimit> tenant_limits;

  // --- Deadline feasibility (JobService + plan::FeasibilityEstimator). ---
  /// Reject a job whose deadline is below the lower-bound exec estimate.
  bool reject_infeasible_deadlines = true;
  /// Scales the estimate before comparing (> 1 rejects earlier).
  double feasibility_margin = 1.0;
  /// Add the observed queue delay (EWMA of recent dispatch waits) to the
  /// estimate — a job that would only meet its deadline on an idle
  /// machine is rejected while the queue is long.
  bool feasibility_includes_queue_delay = true;
  /// Calibrated profile for the estimator (e.g. plan::Calibrator output
  /// or MachineProfile::load). Null = declared models of the machine
  /// tree.
  std::shared_ptr<const plan::MachineProfile> machine_profile;

  // --- CoDel-style shedding. ---
  /// Target sojourn: the oldest pending job staying above this for a
  /// full interval arms the shedder. <= 0 disables shedding.
  double target_queue_delay_s = 0.5;
  /// Initial spacing between sheds; shrinks by 1/sqrt(count) while
  /// pressure persists.
  double shed_interval_s = 0.1;

  // --- Brownout ladder. ---
  bool enable_brownout = true;
  /// Reserved-byte pressure (max over ledger levels of pinned/capacity)
  /// that counts as "full" for the ladder, symmetric with the delay
  /// target.
  double reserved_pressure_watermark = 0.85;
  /// Dwell before stepping the ladder *down* one level after pressure
  /// clears (steps up are immediate).
  double brownout_hold_s = 0.25;
};

/// Classic token bucket over a wall-clock time base, denominated in
/// bytes. Refills continuously at `rate`, caps at `burst`.
class TokenBucket {
 public:
  using Clock = std::chrono::steady_clock;

  TokenBucket(double rate_bytes_per_s, double burst_bytes,
              Clock::time_point now);

  /// Charges `cost_bytes` if available after refilling to `now`.
  /// Unlimited buckets (rate <= 0) always succeed.
  bool try_charge(double cost_bytes, Clock::time_point now);

  /// Tokens available at `now` (refills as a side effect).
  double available(Clock::time_point now);

  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill(Clock::time_point now);

  double rate_;
  double burst_;
  double tokens_;
  Clock::time_point last_;
};

/// Brownout ladder position (see file comment). Exposed as the
/// `svc.brownout` gauge.
enum class BrownoutLevel : int {
  kNormal = 0,        ///< preferred grants, checksums per config
  kShrunkGrants = 1,  ///< grants halfway between preferred and floor
  kFloorGrants = 2,   ///< floor grants, optional checksums disabled
  kShedding = 3,      ///< additionally shedding per the CoDel law
};

/// The service-lock-driven overload brain: rate limiter + pressure
/// tracker + brownout ladder + CoDel shed law. `metrics` may be null
/// (unit tests); all time is passed in explicitly so tests are
/// deterministic.
class OverloadController {
 public:
  using Clock = std::chrono::steady_clock;

  OverloadController(OverloadOptions options, obs::MetricsRegistry* metrics);

  const OverloadOptions& options() const { return options_; }
  bool enabled() const { return options_.enable; }

  /// Rate-limit check: charges `cost_bytes` against `tenant`'s bucket.
  /// False = reject (RejectReason::RateLimited). Increments
  /// svc.ratelimit.charged_bytes or svc.ratelimit.rejected.<tenant>.
  bool try_charge(const std::string& tenant, double cost_bytes,
                  Clock::time_point now);

  /// Effective limit of `tenant` (override or defaults).
  TenantLimit limit_for(const std::string& tenant) const;

  /// Feeds the pressure signals from a dispatch point: the oldest
  /// pending job's current wait (0 when the queue is empty) and the
  /// ledger's reserved-byte fraction. Advances the brownout ladder and
  /// arms/disarms the CoDel shedder.
  void update(Clock::time_point now, double oldest_wait_s,
              double reserved_fraction);

  /// True when the CoDel law says to shed one more pending job *now*.
  /// Call repeatedly from a dispatch point until it returns false;
  /// every true advances the law (next shed comes sooner while pressure
  /// persists).
  void note_shed();  ///< account one shed job (svc.shed.jobs)
  bool take_shed(Clock::time_point now);

  BrownoutLevel brownout_level() const { return level_; }
  /// Preferred-grant scale for admission: 1 at kNormal, 0.5 at
  /// kShrunkGrants, 0 (floor) at kFloorGrants and above.
  double grant_scale() const;
  /// True when the ladder says to skip optional end-to-end checksums.
  bool checksums_disabled() const;

  /// EWMA of dispatched jobs' queue waits — the feasibility estimator's
  /// expected-queue-delay term.
  void observe_queue_wait(double seconds);
  double expected_queue_delay() const { return queue_delay_ewma_; }

 private:
  void set_level(BrownoutLevel level, Clock::time_point now);

  OverloadOptions options_;
  obs::MetricsRegistry* metrics_;

  // Rate limiting.
  std::map<std::string, TokenBucket> buckets_;

  // Brownout ladder.
  BrownoutLevel level_ = BrownoutLevel::kNormal;
  Clock::time_point level_since_{};
  double pressure_ = 0.0;  ///< last max(delay/target, reserved/watermark)

  // CoDel shed law.
  std::optional<Clock::time_point> first_above_;  ///< delay > target since
  bool shedding_ = false;
  std::uint64_t shed_count_ = 0;
  Clock::time_point next_shed_{};

  double queue_delay_ewma_ = 0.0;
};

}  // namespace northup::svc
