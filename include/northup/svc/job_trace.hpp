// Wall-clock Chrome trace of interleaved jobs.
//
// The per-job Runtimes each carry their own EventSim in *virtual* time;
// the service layer instead records the real-time job lifecycle — queue
// wait, every execution attempt, retries, cancellations — into one
// Chrome trace-event file:
//
//   * one process (pid) per tenant, named "tenant:<name>";
//   * one thread (tid) per job, named after the job, so the rows of a
//     tenant's process are its jobs and the horizontal extent of each
//     row is that job's life;
//   * "queue" / "run" complete events (categories double as phases) and
//     instant events for retries and terminal states.
//
// Open the file in Perfetto next to a per-job virtual trace to see how
// admission and scheduling shaped the interleaving.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "northup/util/timer.hpp"

namespace northup::svc {

class JobTraceRecorder {
 public:
  /// Trace time zero is construction.
  JobTraceRecorder() = default;

  /// Seconds since the recorder's epoch — use for span endpoints.
  double now() const { return epoch_.seconds(); }

  /// [start_s, end_s] complete event on (tenant, job) with category
  /// `phase` ("queue", "run", ...).
  void record_span(const std::string& tenant, std::uint64_t job_id,
                   const std::string& job_name, const std::string& label,
                   const char* phase, double start_s, double end_s);

  /// Zero-duration marker ("retry", "cancelled", "expired", ...).
  void record_instant(const std::string& tenant, std::uint64_t job_id,
                      const std::string& job_name, const std::string& label,
                      double at_s);

  std::string to_json() const;

  /// Writes to_json() to `path`; throws util::Error on I/O failure.
  void write_file(const std::string& path) const;

  std::size_t event_count() const;

 private:
  struct Event {
    std::string tenant;
    std::uint64_t job_id = 0;
    std::string job_name;
    std::string label;
    std::string phase;  ///< empty for instants
    double start_s = 0.0;
    double dur_s = 0.0;
    bool instant = false;
  };

  std::uint32_t tenant_pid_locked(const std::string& tenant) const;

  util::Timer epoch_;
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  mutable std::map<std::string, std::uint32_t> pids_;
};

}  // namespace northup::svc
