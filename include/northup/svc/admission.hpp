// Capacity admission control for the job service.
//
// The shared machine is one Runtime whose tree describes the physical
// hierarchy; its per-node cache::BufferPools double as the reservation
// ledger. Admitting a job pins the job's granted footprint on every
// level's pool (pinned bytes are exactly the service's outstanding
// reservations — nothing else allocates on the machine runtime), and the
// job's private execution context is built with its grant as the node
// capacities, so concurrent jobs genuinely partition the machine: more
// co-runners -> smaller grants -> smaller blocks -> more I/O per job.
//
// Jobs whose *floor* footprint exceeds a node's total capacity can never
// run and are rejected immediately with the same node/size/remaining
// detail a util::CapacityError carries; jobs that merely don't fit right
// now queue behind the running set.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "northup/core/runtime.hpp"
#include "northup/svc/job.hpp"

namespace northup::svc {

class AdmissionController {
 public:
  /// `machine` must outlive the controller and have been built with
  /// enable_shard_cache (the pools are the ledger). Walks the
  /// first-child chain root -> leaf; footprint levels map root_bytes ->
  /// level 0, device_bytes -> the leaf of chains deeper than two,
  /// staging_bytes -> everything between.
  explicit AdmissionController(core::Runtime& machine);

  /// Non-empty when `floor` exceeds some node's total capacity — the
  /// job can never run on this machine. The reason names the node, the
  /// requested bytes, and the bytes a fully idle machine could offer.
  std::string impossible_reason(const JobFootprint& floor) const;

  /// Attempts to reserve between `floor` and `preferred` at every level
  /// given current free capacity (grant = min(preferred, free), failing
  /// when any level's free bytes drop under its floor). On success the
  /// grant is pinned on every pool, `granted` is filled, and the
  /// "svc.reserved.<node>" gauges are refreshed.
  bool try_reserve(const JobFootprint& preferred, const JobFootprint& floor,
                   JobFootprint& granted);

  /// Returns a grant obtained from try_reserve.
  void release(const JobFootprint& granted);

  std::size_t levels() const { return chain_.size(); }
  topo::NodeId level_node(std::size_t level) const { return chain_[level]; }
  std::uint64_t level_capacity(std::size_t level) const;
  std::uint64_t reserved_bytes(std::size_t level) const;

  /// Ledger pressure: the max over levels of pinned/capacity, in [0, 1].
  /// One of the two signals driving the overload brownout ladder.
  double reserved_fraction() const;

 private:
  std::uint64_t footprint_at(const JobFootprint& fp, std::size_t level) const;
  void refresh_gauges_locked();

  core::Runtime& machine_;
  std::vector<topo::NodeId> chain_;  ///< root-to-leaf first-child chain
  mutable std::mutex mutex_;         ///< guards the pools' pin accounting
};

}  // namespace northup::svc
