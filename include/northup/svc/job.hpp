// Job model of the northup::svc multi-tenant service layer.
//
// Every Northup workload so far is a single-shot binary: one Runtime, one
// tree, one algorithm. The service layer turns the three case studies
// into *jobs* that many tenants submit concurrently against one shared
// memory hierarchy — the shared-capacity problem that online guidance
// systems for heterogeneous memories manage across co-running
// applications (arXiv:2110.02150). A JobRequest names the algorithm and
// its config plus the service-level attributes (tenant, priority, fair
// share weight, deadline, retry budget); the admission layer converts the
// config into a per-tree-level byte footprint that gets reserved against
// the machine's BufferPools before the job may start.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "northup/algos/csr_adaptive.hpp"
#include "northup/algos/gemm.hpp"
#include "northup/algos/hotspot.hpp"
#include "northup/memsim/fault_injection.hpp"
#include "northup/plan/feasibility.hpp"

namespace northup::svc {

enum class JobKind { Gemm, Hotspot, Spmv };

const char* kind_name(JobKind kind);

/// The algorithm payload: exactly one of the three case-study configs.
using JobConfig =
    std::variant<algos::GemmConfig, algos::HotspotConfig, algos::SpmvConfig>;

/// Bytes a job needs reserved per level of the (linear-chain) machine
/// tree before it can run. Level 2 is ignored on two-level machines.
struct JobFootprint {
  std::uint64_t root_bytes = 0;     ///< level 0 (file storage): inputs + outputs
  std::uint64_t staging_bytes = 0;  ///< level 1 (DRAM): working blocks
  std::uint64_t device_bytes = 0;   ///< level 2 (device memory), if present

  bool zero() const {
    return root_bytes == 0 && staging_bytes == 0 && device_bytes == 0;
  }
};

/// Deterministic fault-injection plan for failure testing: the service
/// wraps the job runtime's root storage in mem::FaultInjectingStorage and
/// arms it for the first `failing_attempts` attempts, so a job fails,
/// retries, and (with max_retries >= failing_attempts) succeeds.
struct FaultPlan {
  std::uint32_t failing_attempts = 0;  ///< 0 = no injection
  mem::FaultKind kind = mem::FaultKind::Read;
  std::uint64_t countdown = 1;  ///< which access of the attempt faults
};

struct JobRequest {
  std::string name;              ///< trace label ("" = "<kind>-<id>")
  std::string tenant = "default";
  JobConfig config = algos::GemmConfig{};

  int priority = 0;     ///< higher dispatches first
  double weight = 1.0;  ///< weighted-fair share of the tenant (> 0)
  /// Seconds from submission after which a still-queued job is expired
  /// instead of dispatched. 0 = no deadline.
  double deadline_s = 0.0;
  /// Additional attempts after a failed one (I/O faults only; capacity
  /// and logic errors fail immediately). With the chunk-level retry
  /// policy in the data plane this is the *last resort*: transient
  /// faults are normally absorbed per transfer and never surface here.
  std::uint32_t max_retries = 0;
  FaultPlan fault;
  /// Seeded probabilistic chaos applied to the job runtime's root
  /// (deep-storage) node on every attempt — the knob the chaos tests and
  /// CI leg turn. Disabled by default (all rates zero).
  mem::FaultPlan chaos;

  /// Overrides the estimated reservation when non-zero (all three fields
  /// taken verbatim; the admission controller still clamps/validates).
  JobFootprint footprint;
};

JobKind kind_of(const JobRequest& request);

/// Preferred reservation for `request`: enough capacity at every level
/// for the decomposition the bench harnesses use (level-1 blocks around
/// n/4), with headroom for the shard cache. Granting less is legal down
/// to min_footprint — the algorithms re-chunk to whatever they get.
JobFootprint estimate_footprint(const JobRequest& request);

/// Floor reservation below which the job can never run: exact root
/// input/output bytes plus the smallest feasible working set (leaf-tile
/// blocks; for SpMV the resident dense vector). Jobs whose floor exceeds
/// a node's total capacity are fast-rejected at submission.
JobFootprint min_footprint(const JobRequest& request);

/// Lower-bound work of `request` for the overload layer: exact input
/// bytes down, result bytes up, kernel flops and leaf memory traffic —
/// no decomposition overheads (re-reads, halos), so feasibility verdicts
/// built on it only reject jobs that certainly cannot finish in time.
/// Its total_bytes() is also the cost the per-tenant rate limiter
/// charges.
plan::WorkEstimate work_estimate(const JobRequest& request);

}  // namespace northup::svc
