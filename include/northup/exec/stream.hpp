// In-order task stream over an exec::TaskGraph (CUDA-stream-style
// convenience): every submitted body depends on the previously submitted
// one, so a Stream serializes its own work while still overlapping with
// other streams and loose nodes of the same graph.
#pragma once

#include <utility>

#include "northup/exec/task_graph.hpp"

namespace northup::exec {

class Stream {
 public:
  /// The graph must outlive the stream.
  explicit Stream(TaskGraph& graph) : graph_(&graph) {}

  /// Adds `body` behind everything previously submitted to this stream
  /// (plus `extra_deps`, e.g. a node from another stream to rendezvous
  /// with). Returns the new node's handle.
  TaskHandle submit(TaskGraph::Body body,
                    std::vector<TaskHandle> extra_deps = {}) {
    extra_deps.push_back(last_);  // invalid on the first submit; skipped
    last_ = graph_->add(std::move(body), std::move(extra_deps));
    return last_;
  }

  /// Handle of the most recently submitted node (invalid when empty);
  /// use as a dependency to order other work behind this stream.
  TaskHandle last() const { return last_; }

  /// Waits until everything submitted so far has finished.
  void wait() {
    if (last_.valid()) graph_->wait(last_);
  }

 private:
  TaskGraph* graph_;
  TaskHandle last_{};
};

}  // namespace northup::exec
