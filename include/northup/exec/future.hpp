// Futures for the asynchronous continuation-DAG executor (northup::exec).
//
// A Future<T> is the completion handle of one exec::TaskGraph node (or of
// a continuation chained with then()). Unlike std::future it carries the
// producing node's TaskHandle, so planners can feed one operation's
// completion into another operation's dependency list without touching
// the value — that is how "chunk k+1's download depends on chunk k-1's
// compute having vacated the staging slot" is expressed.
//
// Completion model: a Promise<T> fulfills the shared state exactly once
// (value or exception); continuations registered with then() run inline
// on the completing thread, with upstream errors propagated past the
// continuation body (the body is skipped, its future carries the error).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "northup/util/assert.hpp"

namespace northup::exec {

class TaskGraph;

inline constexpr std::uint32_t kInvalidTaskNode = 0xffffffffu;

/// Identifies one node of one TaskGraph. Used in dependency lists; an
/// invalid handle in a dependency list is ignored (convenient for "the
/// previous iteration's task" on the first iteration).
struct TaskHandle {
  TaskGraph* graph = nullptr;
  std::uint32_t node = kInvalidTaskNode;

  bool valid() const { return graph != nullptr && node != kInvalidTaskNode; }
};

/// Value type of futures that carry completion only (move_up, launches).
struct Unit {};

/// Raised through a Future when its producing task was cancelled before
/// it ran (TaskGraph::cancel, e.g. on job cancellation).
class CancelledError : public util::Error {
 public:
  using Error::Error;
};

/// Raised through a Future when an upstream dependency failed, poisoning
/// this task before it could run. The root cause travels through the
/// failing task's own future.
class DependencyError : public util::Error {
 public:
  using Error::Error;
};

namespace detail {

/// Shared completion state of one Future/Promise pair.
template <typename T>
struct SharedState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::optional<T> value;
  std::exception_ptr error;
  /// Run exactly once, after done flips, outside the lock.
  std::vector<std::function<void(SharedState&)>> continuations;

  void complete_value(T v) {
    std::vector<std::function<void(SharedState&)>> conts;
    {
      std::lock_guard<std::mutex> lock(mu);
      NU_CHECK(!done, "exec::Promise fulfilled twice");
      value.emplace(std::move(v));
      done = true;
      conts.swap(continuations);
      cv.notify_all();
    }
    for (auto& c : conts) c(*this);
  }

  void complete_error(std::exception_ptr e) {
    std::vector<std::function<void(SharedState&)>> conts;
    {
      std::lock_guard<std::mutex> lock(mu);
      NU_CHECK(!done, "exec::Promise fulfilled twice");
      error = std::move(e);
      done = true;
      conts.swap(continuations);
      cv.notify_all();
    }
    for (auto& c : conts) c(*this);
  }

  /// Registers `c`, or runs it inline when already complete.
  void add_continuation(std::function<void(SharedState&)> c) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (!done) {
        continuations.push_back(std::move(c));
        return;
      }
    }
    c(*this);
  }
};

}  // namespace detail

template <typename T>
class Future;

/// Producer side: fulfills the shared state exactly once. Copyable so a
/// task body (std::function requires copyability) can own it.
template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::SharedState<T>>()) {}

  Future<T> future(TaskHandle task = {}) const;

  void set_value(T value) const { state_->complete_value(std::move(value)); }
  void set_exception(std::exception_ptr e) const {
    state_->complete_error(std::move(e));
  }
  bool fulfilled() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
  }

 private:
  std::shared_ptr<detail::SharedState<T>> state_;
};

/// Consumer side. Copyable (shared state); get() consumes the value (one
/// consumer moves it out — later get() calls on a moved-from value are a
/// checked error), wait()/ready() are free for any holder.
template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return state_ != nullptr; }

  /// The producing TaskGraph node (invalid for then()-continuations and
  /// default-constructed futures). Feed this into dependency lists.
  TaskHandle task() const { return task_; }

  bool ready() const {
    NU_CHECK(valid(), "ready() on an empty exec::Future");
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
  }

  void wait() const {
    NU_CHECK(valid(), "wait() on an empty exec::Future");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
  }

  /// Waits, rethrows the task's error if it failed, and moves the value
  /// out (single consumption).
  T get() {
    NU_CHECK(valid(), "get() on an empty exec::Future");
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
    if (state_->error) std::rethrow_exception(state_->error);
    NU_CHECK(state_->value.has_value(),
             "exec::Future value already consumed");
    T out = std::move(*state_->value);
    state_->value.reset();
    return out;
  }

  /// Requests cancellation of the producing task (no-op if it already
  /// started, or for continuation futures). Defined in task_graph.hpp.
  void cancel();

  /// Chains `fn` to run inline on the completing thread with the value.
  /// Upstream errors skip `fn` and propagate into the returned future;
  /// an exception thrown by `fn` is captured the same way. `fn` takes
  /// `T&` (the upstream value stays owned by the upstream state unless
  /// `fn` moves from it).
  template <typename Fn>
  auto then(Fn fn) -> Future<std::conditional_t<
      std::is_void_v<std::invoke_result_t<Fn, T&>>, Unit,
      std::invoke_result_t<Fn, T&>>> {
    NU_CHECK(valid(), "then() on an empty exec::Future");
    using R = std::invoke_result_t<Fn, T&>;
    using U = std::conditional_t<std::is_void_v<R>, Unit, R>;
    Promise<U> next;
    state_->add_continuation(
        [next, fn = std::move(fn)](detail::SharedState<T>& s) mutable {
          if (s.error) {
            next.set_exception(s.error);
            return;
          }
          try {
            if constexpr (std::is_void_v<R>) {
              fn(*s.value);
              next.set_value(Unit{});
            } else {
              next.set_value(fn(*s.value));
            }
          } catch (...) {
            next.set_exception(std::current_exception());
          }
        });
    return next.future();
  }

 private:
  friend class Promise<T>;
  Future(std::shared_ptr<detail::SharedState<T>> state, TaskHandle task)
      : state_(std::move(state)), task_(task) {}

  std::shared_ptr<detail::SharedState<T>> state_;
  TaskHandle task_;
};

template <typename T>
Future<T> Promise<T>::future(TaskHandle task) const {
  return Future<T>(state_, task);
}

}  // namespace northup::exec
