// Asynchronous continuation DAG over the work-stealing pool (the exec
// subsystem's engine, ISSUE 6 tentpole).
//
// Nodes are data moves, kernel launches, and cache ops; edges are data
// dependencies. Submission is eager and acyclic by construction — a
// dependency must name an already-added node, mirroring sim::EventSim's
// single-pass discipline — and a completed node schedules its ready
// dependents onto the sched::WorkStealingPool.
//
// Two execution modes, chosen by the pool pointer:
//   * pool == nullptr (inline): a node runs synchronously on the thread
//     that made it ready — add() of a node with satisfied dependencies
//     executes it before returning. This is the deterministic mode behind
//     the blocking one-node-graph wrappers: program order is preserved
//     exactly, so legacy fork-join behavior is unchanged.
//   * pool != nullptr (async): ready nodes are submitted to the pool and
//     run concurrently; wait()/wait_all() join.
//
// Failure model: a body that throws marks its node failed, and every
// transitive dependent runs with RunStatus::kDepFailed (bodies typically
// complete their exec::Promise with the matching error and return).
// cancel() makes every not-yet-started node run with kCancelled.
//
// Observability: each node captures the submitting thread's causal span
// (obs::EventLog::Context) at add() time and, when it has dependencies,
// adopts the span of its last-finishing dependency instead — span parents
// follow DAG edges, so northup-analyze's critical-path walk descends
// through the actual dependency chain of a pipelined run.
//
// Retry backoff: a body may throw BackoffYield (the resil layer does this
// when it would otherwise sleep a worker thread mid-backoff). The node is
// then re-armed on a timer and re-runs after the delay; per-node resume
// state (current_resume_slot) lets the retry loop continue from the
// attempt it yielded at.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "northup/exec/future.hpp"
#include "northup/obs/event_log.hpp"
#include "northup/sched/pool.hpp"

namespace northup::exec {

/// Why a node's body is being invoked.
enum class RunStatus : std::uint8_t {
  kOk = 0,         ///< all dependencies succeeded
  kDepFailed = 1,  ///< an upstream task failed; complete promises with errors
  kCancelled = 2,  ///< the graph (or this node) was cancelled before it ran
};

/// Thrown out of a task body to release the worker during a retry
/// backoff; the graph re-arms the same node `delay_s` later instead of
/// letting the thread sleep. Only meaningful under a pool-backed graph —
/// check TaskGraph::current_can_yield() before throwing.
struct BackoffYield {
  double delay_s = 0.0;
};

class TaskGraph {
 public:
  /// Body of one node. Must not block on futures of later-added nodes.
  /// A body observing a non-kOk status should complete its promises with
  /// the matching error and return; the node still poisons dependents.
  using Body = std::function<void(RunStatus)>;

  /// `pool` may be null (inline mode, see header comment). The pool must
  /// outlive the graph.
  explicit TaskGraph(sched::WorkStealingPool* pool = nullptr);

  /// Waits for every outstanding node (including timer-armed retries).
  ~TaskGraph();

  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  sched::WorkStealingPool* pool() const { return pool_; }

  /// True when nodes run on pool workers (overlap possible); false in
  /// the deterministic inline mode.
  bool is_async() const { return pool_ != nullptr; }

  /// Adds a node depending on `deps` (invalid handles and handles into
  /// other graphs are rejected; invalid == default TaskHandle is skipped,
  /// so "previous iteration" handles need no first-iteration special
  /// case). In inline mode the node executes before add() returns.
  TaskHandle add(Body body, std::vector<TaskHandle> deps = {});

  /// Waits until `task` has finished (done, failed, or cancelled).
  void wait(TaskHandle task);

  /// Waits until every added node has finished.
  void wait_all();

  /// Marks every not-yet-started node cancelled: each still runs (so its
  /// promises complete), but with RunStatus::kCancelled.
  void cancel();

  /// Cancels one not-yet-started node (Future<T>::cancel routes here).
  void cancel_node(std::uint32_t node);

  std::size_t task_count() const;

  /// First genuine body failure of the run (nullptr when none): a node
  /// whose dependencies were satisfied yet whose body threw. Dependency
  /// poisoning and cancellations are downstream symptoms and are not
  /// recorded — only the root cause. Runtime::run_from rethrows this
  /// after the graph drains, so a failed node fails the run just as a
  /// throwing blocking call failed the legacy run.
  std::exception_ptr first_error() const;

  // --- Worker-context queries (resil BackoffYield support) ---------------

  /// Keyed state a node body parks across BackoffYield re-arms: a body
  /// re-executes from its start after the delay, and each resumable step
  /// inside it (keyed by its op label) finds its progress here.
  struct ResumeState {
    std::map<std::string, std::shared_ptr<void>> slots;
  };

  /// True when the calling thread is inside a node body of a pool-backed
  /// graph, i.e. throwing BackoffYield will re-arm instead of crash.
  static bool current_can_yield();

  /// The running node's resume state, created on first use (the resil
  /// retry loop parks its attempt counter here). Null when the calling
  /// thread is not running a node.
  static ResumeState* current_resume();

 private:
  struct Node {
    Body body;
    std::vector<std::uint32_t> dependents;
    std::uint32_t pending = 0;
    bool started = false;
    bool done = false;
    bool failed = false;
    bool poisoned = false;   ///< an upstream node failed
    bool cancelled = false;
    obs::EventLog::Context build_ctx;  ///< submitting thread's span
    obs::EventLog::Context ready_ctx;  ///< last-finishing dependency's span
    bool has_ready_ctx = false;
    std::shared_ptr<ResumeState> resume_state;  ///< survives BackoffYield
  };

  void run_node(std::uint32_t idx);
  /// Marks `idx` finished and collects newly ready dependents.
  void finish_node(std::uint32_t idx, bool failed,
                   const obs::EventLog::Context& ran_under);
  void dispatch(const std::vector<std::uint32_t>& ready);
  void arm_timer(std::uint32_t idx, double delay_s);
  void timer_loop();

  sched::WorkStealingPool* pool_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Node> nodes_;  ///< deque: stable addresses while growing
  std::size_t outstanding_ = 0;
  bool cancelled_ = false;
  std::exception_ptr first_error_;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::multimap<std::chrono::steady_clock::time_point, std::uint32_t> timed_;
  std::thread timer_thread_;  ///< lazily started on the first arm
  bool timer_stop_ = false;
};

/// Disables BackoffYield for the current thread while in scope. Node
/// bodies that are not safe to re-run from the top (a spawned chunk would
/// re-spawn; a cache acquisition would re-acquire mid-fill) wrap their
/// work in this so a retry backoff inside them sleeps instead of
/// yielding the worker.
class YieldInhibitScope {
 public:
  YieldInhibitScope();
  ~YieldInhibitScope();
  YieldInhibitScope(const YieldInhibitScope&) = delete;
  YieldInhibitScope& operator=(const YieldInhibitScope&) = delete;

 private:
  bool prev_;
};

template <typename T>
inline void Future<T>::cancel() {
  if (task_.valid()) task_.graph->cancel_node(task_.node);
}

}  // namespace northup::exec
