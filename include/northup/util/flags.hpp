// Minimal command-line flag parsing for the examples and benchmarks.
//
// Supports `--name=value`, `--name value`, bare `--flag` booleans, and
// positional arguments. No registration step: parse once, query typed
// values with defaults.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace northup::util {

class Flags {
 public:
  /// Parses argv; throws util::Error on malformed input (e.g. `--=x`).
  Flags(int argc, const char* const* argv);

  bool has(const std::string& name) const;

  /// Typed accessors with defaults. Throw util::Error when the present
  /// value does not parse.
  std::string get(const std::string& name,
                  const std::string& default_value = "") const;
  std::int64_t get_int(const std::string& name,
                       std::int64_t default_value) const;
  double get_double(const std::string& name, double default_value) const;
  bool get_bool(const std::string& name, bool default_value = false) const;
  /// Byte sizes with binary suffixes ("2G", "512K").
  std::uint64_t get_bytes(const std::string& name,
                          std::uint64_t default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace northup::util
