// Deterministic, seedable random number generation.
//
// Benchmarks and property tests must be reproducible run-to-run, so the
// library never touches std::random_device; every generator is seeded
// explicitly. Xoshiro256** is used for speed, SplitMix64 for seeding.
#pragma once

#include <cstdint>
#include <limits>

#include "northup/util/assert.hpp"

namespace northup::util {

/// SplitMix64 — used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** — fast, high-quality PRNG for workload generation.
/// Satisfies UniformRandomBitGenerator so it plugs into <random> if needed.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t bounded(std::uint64_t n) {
    NU_ASSERT(n > 0);
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>((*this)()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>((*this)()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    NU_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace northup::util
