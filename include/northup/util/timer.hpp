// Wall-clock timing helpers for measuring real runtime overhead (§V-B).
#pragma once

#include <chrono>

namespace northup::util {

/// Monotonic wall-clock stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall time across multiple start/stop intervals, e.g. to
/// total up the runtime's own bookkeeping cost separately from compute.
class AccumulatingTimer {
 public:
  void start() { t_.reset(); running_ = true; }

  void stop() {
    if (running_) {
      total_ += t_.seconds();
      running_ = false;
    }
  }

  double total_seconds() const { return total_; }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

/// RAII guard that adds the scope's duration to an AccumulatingTimer.
class ScopedTimer {
 public:
  explicit ScopedTimer(AccumulatingTimer& acc) : acc_(acc) { acc_.start(); }
  ~ScopedTimer() { acc_.stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  AccumulatingTimer& acc_;
};

}  // namespace northup::util
