// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) — the end-to-end
// transfer checksum of the resilience layer.
//
// Software slice-by-4 over a lazily built table set; fast enough that the
// data plane can checksum every chunk transfer when verification is on
// (the measured overhead lives in bench/ablation_resilience and
// docs/resilience.md). Streaming-friendly: feed partial buffers by
// passing the previous result back in as `seed`.
#pragma once

#include <cstddef>
#include <cstdint>

namespace northup::util {

/// CRC32 of `size` bytes. `seed` chains partial computations:
///   crc32(b, n) == crc32(b + k, n - k, crc32(b, k))
/// crc32("123456789") == 0xCBF43926 (the standard check value).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace northup::util
