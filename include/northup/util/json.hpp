// Minimal shared JSON reading/writing for library code.
//
// The test-support minijson parser lives under tests/ and cannot be
// included from the library; plan::MachineProfile carries a private
// reader for exactly the subset its own writer emits. The HTTP control
// plane is different: request bodies arrive from *clients*, so the
// parser here accepts the full JSON grammar (objects, arrays, strings
// with escapes, numbers, booleans, null) and reports malformed input
// with a byte offset instead of asserting.
//
// Writing goes through the same conventions the rest of the codebase
// settled on: std::to_chars shortest-round-trip doubles (locale
// independent, byte-stable) and the obs-style string escaping.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace northup::util::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  /// Key order preserved as parsed? No — std::map keeps keys sorted,
  /// which is what every serializer in this codebase emits anyway.
  std::map<std::string, Value> object;

  bool is_null() const { return kind == Kind::Null; }
  bool is_object() const { return kind == Kind::Object; }
  bool is_array() const { return kind == Kind::Array; }

  bool has(const std::string& key) const {
    return kind == Kind::Object && object.count(key) > 0;
  }

  /// Typed member lookups with fallbacks (missing key or wrong kind
  /// yields the fallback — the tolerant-read style HTTP bodies need).
  double num(const std::string& key, double fallback = 0.0) const;
  std::uint64_t u64(const std::string& key, std::uint64_t fallback = 0) const;
  bool boolean_or(const std::string& key, bool fallback) const;
  std::string str(const std::string& key,
                  const std::string& fallback = "") const;
  /// Member access; returns a shared Null value when absent.
  const Value& at(const std::string& key) const;
};

/// Parses `text` as one JSON document. Throws util::Error naming
/// `origin` (e.g. the endpoint or file) and the byte offset on
/// malformed input.
Value parse(const std::string& text, const std::string& origin);

/// JSON string escaping (quotes, backslashes, control characters) —
/// the exact style MetricsRegistry::to_json uses.
std::string escape(const std::string& s);

/// Shortest-round-trip double via std::to_chars; non-finite values
/// become 0 so emitted documents always parse.
std::string format_double(double value);

}  // namespace northup::util::json
