// Cache-line / page aligned byte buffer, used for staging buffers so
// O_DIRECT-style I/O paths and SIMD-friendly kernels get aligned memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <utility>

#include "northup/util/assert.hpp"

namespace northup::util {

inline constexpr std::size_t kCacheLineSize = 64;
inline constexpr std::size_t kPageSize = 4096;

/// Owning, aligned, uninitialized byte buffer with move-only semantics.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t size, std::size_t alignment = kPageSize)
      : size_(size) {
    NU_CHECK(alignment != 0 && (alignment & (alignment - 1)) == 0,
             "alignment must be a power of two");
    if (size == 0) return;
    // std::aligned_alloc requires size to be a multiple of alignment.
    const std::size_t padded = (size + alignment - 1) / alignment * alignment;
    data_ = static_cast<std::byte*>(std::aligned_alloc(alignment, padded));
    if (data_ == nullptr) throw std::bad_alloc();
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      std::free(data_);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { std::free(data_); }

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  template <typename T>
  T* as() {
    return reinterpret_cast<T*>(data_);
  }
  template <typename T>
  const T* as() const {
    return reinterpret_cast<const T*>(data_);
  }

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace northup::util
