// Small statistics helpers used by benchmark harnesses and the profiler.
#pragma once

#include <cstddef>
#include <vector>

namespace northup::util {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the p-th percentile (0..100) of `values` using linear
/// interpolation between order statistics. `values` is copied and sorted.
double percentile(std::vector<double> values, double p);

/// Geometric mean; all values must be positive.
double geomean(const std::vector<double>& values);

}  // namespace northup::util
