// Byte-size parsing ("2G", "512M") and human-readable formatting, used by
// topology config files and benchmark CLI flags.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace northup::util {

/// Parses a byte size with an optional binary suffix: "4096", "64K", "2M",
/// "2G", "1T" (case-insensitive, optional trailing 'B' / "iB").
/// Throws util::Error on malformed input.
std::uint64_t parse_bytes(std::string_view text);

/// Formats a byte count as a short human-readable string, e.g. "2.0 GiB".
std::string format_bytes(std::uint64_t bytes);

/// Formats a duration in seconds with an adaptive unit, e.g. "12.3 ms".
std::string format_seconds(double seconds);

/// Formats a bandwidth in bytes/second, e.g. "1.4 GB/s".
std::string format_bandwidth(double bytes_per_second);

}  // namespace northup::util
