// Northup runtime — assertion and error-reporting primitives.
//
// Two tiers, following the usual HPC-library convention:
//   * NU_ASSERT   — internal invariant; compiled out in NDEBUG builds.
//   * NU_CHECK    — precondition on user-visible API input; always on, throws
//                   northup::util::Error so callers can recover or report.
#pragma once

#include <cassert>
#include <sstream>
#include <stdexcept>
#include <string>

namespace northup::util {

/// Base exception for all errors raised by the Northup library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// Raised when an allocation would exceed a memory node's capacity.
class CapacityError : public Error {
 public:
  using Error::Error;
};

/// Raised when an I/O operation on a file-backed storage node fails.
class IoError : public Error {
 public:
  using Error::Error;
};

/// Raised when a topology query or construction is malformed.
class TopologyError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "NU_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace northup::util

#define NU_ASSERT(expr) assert(expr)

#define NU_CHECK(expr, msg)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::northup::util::detail::throw_check_failure(#expr, __FILE__,          \
                                                   __LINE__, (msg));         \
    }                                                                        \
  } while (0)
