// Northup runtime — assertion and error-reporting primitives.
//
// Two tiers, following the usual HPC-library convention:
//   * NU_ASSERT   — internal invariant; compiled out in NDEBUG builds.
//   * NU_CHECK    — precondition on user-visible API input; always on, throws
//                   northup::util::Error so callers can recover or report.
#pragma once

#include <cassert>
#include <cerrno>
#include <sstream>
#include <stdexcept>
#include <string>

namespace northup::util {

/// Base exception for all errors raised by the Northup library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what_arg) : std::runtime_error(what_arg) {}
};

/// Raised when an allocation would exceed a memory node's capacity.
class CapacityError : public Error {
 public:
  using Error::Error;
};

/// True for errno values that name conditions worth retrying (the
/// environment may recover); false for programming/configuration errors.
/// EIO is transient here on purpose: a flaky device read is exactly the
/// failure the chunk-level retry policy exists to absorb.
inline bool errno_transient(int err) {
  switch (err) {
    case EINTR:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
    case EIO:
    case ETIMEDOUT:
      return true;
    default:
      return false;
  }
}

/// Raised when an I/O operation on a storage node fails. Carries the
/// originating errno and a transient-vs-permanent hint so the resilience
/// layer classifies failures structurally instead of parsing strings, and
/// an `origin` naming the storage that raised it (set by the mem::Storage
/// access wrappers) so failures can be attributed to a tree node.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what_arg, int errno_value = 0,
                   bool transient = false)
      : Error(what_arg),
        errno_(errno_value),
        transient_(transient || errno_transient(errno_value)) {}

  int errno_value() const { return errno_; }
  /// Hint that retrying the operation may succeed.
  bool transient() const { return transient_; }
  /// Name of the storage backend that raised the error ("" = unknown).
  const std::string& origin() const { return origin_; }
  void set_origin(const std::string& origin) { origin_ = origin; }

 private:
  int errno_ = 0;
  bool transient_ = false;
  std::string origin_;
};

/// Raised when an end-to-end transfer checksum does not match: the bytes
/// that arrived are not the bytes that were sent. Always worth a retry
/// (re-read / re-write), but counted separately from plain I/O faults.
class CorruptionError : public Error {
 public:
  explicit CorruptionError(const std::string& what_arg,
                           std::string origin = "")
      : Error(what_arg), origin_(std::move(origin)) {}

  /// Name of the storage side whose bytes mismatched ("" = unknown).
  const std::string& origin() const { return origin_; }

 private:
  std::string origin_;
};

/// Raised when a topology query or construction is malformed.
class TopologyError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << "NU_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace northup::util

#define NU_ASSERT(expr) assert(expr)

#define NU_CHECK(expr, msg)                                                  \
  do {                                                                       \
    if (!(expr)) {                                                           \
      ::northup::util::detail::throw_check_failure(#expr, __FILE__,          \
                                                   __LINE__, (msg));         \
    }                                                                        \
  } while (0)
