// Minimal leveled logger. Disabled below the active level at runtime;
// benchmarks set Level::Warn to keep output clean.
#pragma once

#include <sstream>
#include <string>

namespace northup::util {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Process-global log configuration.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel level);

  /// Emits one line to stderr with a level tag. Thread-safe.
  static void write(LogLevel level, const std::string& message);

  static const char* level_name(LogLevel level);
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace northup::util

#define NU_LOG(level_enum)                                              \
  if (::northup::util::Log::level() <= (level_enum))                   \
  ::northup::util::detail::LogLine(level_enum)

#define NU_LOG_TRACE NU_LOG(::northup::util::LogLevel::Trace)
#define NU_LOG_DEBUG NU_LOG(::northup::util::LogLevel::Debug)
#define NU_LOG_INFO NU_LOG(::northup::util::LogLevel::Info)
#define NU_LOG_WARN NU_LOG(::northup::util::LogLevel::Warn)
#define NU_LOG_ERROR NU_LOG(::northup::util::LogLevel::Error)
