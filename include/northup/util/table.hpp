// ASCII table printer used by benchmark harnesses to emit the rows/series
// of the paper's figures in a stable, diff-friendly format.
#pragma once

#include <string>
#include <vector>

namespace northup::util {

/// Column-aligned text table. Add a header row, then data rows; render()
/// pads each column to its widest cell.
class TextTable {
 public:
  /// Sets the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double value, int precision = 3);

  /// Renders the table with a separator line under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace northup::util
