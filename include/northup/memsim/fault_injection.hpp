// Fault-injecting storage wrapper for failure and chaos testing.
//
// Wraps any Storage backend and perturbs its operations two ways:
//
//   * arm(kind, countdown) — the legacy single-shot trigger: the Nth
//     subsequent operation of `kind` throws a *permanent*-class
//     util::IoError (the chunk-level retry loop will not absorb it, so
//     tests of whole-job retry and clean failure propagation keep their
//     semantics).
//   * set_plan(FaultPlan) — seeded probabilistic chaos: per-operation
//     fault/corruption/latency-spike probabilities, transient-for-N-ops
//     bursts or permanent-class errors, and a total fault budget. This is
//     what the chaos CI leg and the resilience tests drive.
//
// The wrapper is thread-safe: concurrent workers may access the storage
// while a test arms/disarms faults and reads the counters.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "northup/memsim/storage.hpp"
#include "northup/util/rng.hpp"

namespace northup::mem {

/// Which operation class the injected fault applies to.
enum class FaultKind { Read, Write, Alloc };

/// Seeded probabilistic fault schedule. All rates are per-operation
/// probabilities in [0, 1]; everything derives from `seed`, so a chaos
/// run is exactly reproducible.
struct FaultPlan {
  std::uint64_t seed = 1;
  double read_fault_rate = 0.0;   ///< P(read throws util::IoError)
  double write_fault_rate = 0.0;  ///< P(write throws util::IoError)
  double alloc_fault_rate = 0.0;  ///< P(alloc throws util::IoError)
  /// P(one random bit of the bytes handed back by a read is flipped) —
  /// only end-to-end checksums catch this.
  double read_corrupt_rate = 0.0;
  /// P(one random bit of the bytes given to a write is flipped before
  /// they reach the inner backend).
  double write_corrupt_rate = 0.0;
  double latency_spike_rate = 0.0;  ///< P(op sleeps latency_spike_s first)
  double latency_spike_s = 0.0;
  /// Burst length: once a fault fires, the following transient_ops - 1
  /// operations of the same kind fail too (models a device that stays
  /// bad for a little while). 1 = independent single-op faults.
  std::uint32_t transient_ops = 1;
  /// Injected IoErrors are permanent-class (never retried) instead of
  /// transient. With a rate of 1.0 this models a dead node — the breaker
  /// test's configuration.
  bool permanent = false;
  /// Total plan-injected faults across all kinds; 0 = unlimited.
  std::uint64_t max_faults = 0;

  bool enabled() const {
    return read_fault_rate > 0.0 || write_fault_rate > 0.0 ||
           alloc_fault_rate > 0.0 || read_corrupt_rate > 0.0 ||
           write_corrupt_rate > 0.0 || latency_spike_rate > 0.0;
  }
};

/// Storage decorator that injects faults per arm() or a FaultPlan.
class FaultInjectingStorage final : public Storage {
 public:
  /// Takes ownership of `inner`; forwards everything to it until a
  /// fault fires. The wrapper mirrors the inner capacity and model.
  explicit FaultInjectingStorage(std::unique_ptr<Storage> inner);

  /// Arms a single-shot fault: the `countdown`-th subsequent operation
  /// of `kind` (1 = the very next one) throws a permanent-class
  /// util::IoError.
  void arm(FaultKind kind, std::uint64_t countdown);

  /// Disarms any pending single-shot fault (the plan is unaffected).
  void disarm();

  /// Installs (or clears, with a default-constructed plan) the seeded
  /// probabilistic schedule; resets the plan's RNG and burst state.
  void set_plan(const FaultPlan& plan);
  const FaultPlan& plan() const { return plan_; }

  /// Number of injected IoErrors (single-shot and plan faults).
  std::uint64_t faults_fired() const {
    return fired_.load(std::memory_order_relaxed);
  }
  /// Number of bit-flips injected by the plan's corrupt rates.
  std::uint64_t corruptions_injected() const {
    return corrupted_.load(std::memory_order_relaxed);
  }
  /// Number of latency spikes the plan has inserted.
  std::uint64_t spikes_injected() const {
    return spiked_.load(std::memory_order_relaxed);
  }

 protected:
  std::uint64_t do_alloc(std::uint64_t size) override;
  void do_release(std::uint64_t handle) override;
  void do_read(void* dst, std::uint64_t handle, std::uint64_t offset,
               std::uint64_t size) override;
  void do_write(std::uint64_t handle, std::uint64_t offset, const void* src,
                std::uint64_t size) override;

 private:
  /// Requires mu_. Throws when the single-shot trigger or the plan says
  /// this operation fails; applies the plan's latency spike first.
  void maybe_fire_locked(FaultKind kind);
  [[noreturn]] void throw_fault(FaultKind kind, bool permanent);
  /// Requires mu_. True when the plan corrupts this operation's bytes.
  bool plan_corrupts_locked(double rate);
  /// Flips one seeded-random bit in buf[0, size).
  void flip_bit_locked(std::byte* buf, std::uint64_t size);

  std::unique_ptr<Storage> inner_;
  mutable std::mutex mu_;  ///< guards everything below plus allocations_
  std::map<std::uint64_t, Allocation> allocations_;
  bool armed_ = false;
  FaultKind kind_ = FaultKind::Read;
  std::uint64_t countdown_ = 0;
  FaultPlan plan_;
  util::Xoshiro256 rng_{1};
  std::uint64_t plan_fired_ = 0;       ///< plan faults, for max_faults
  std::uint32_t burst_remaining_ = 0;  ///< transient_ops burst in progress
  FaultKind burst_kind_ = FaultKind::Read;
  std::atomic<std::uint64_t> fired_{0};
  std::atomic<std::uint64_t> corrupted_{0};
  std::atomic<std::uint64_t> spiked_{0};
};

}  // namespace northup::mem
