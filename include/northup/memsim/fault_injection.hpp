// Fault-injecting storage wrapper for failure testing.
//
// Wraps any Storage backend and raises util::IoError on a chosen access
// (the Nth read/write, or every access after a trigger). Used by the test
// suite to verify that I/O failures deep inside a recursive out-of-core
// execution propagate cleanly to the caller instead of corrupting state.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "northup/memsim/storage.hpp"

namespace northup::mem {

/// Which operation class the injected fault applies to.
enum class FaultKind { Read, Write, Alloc };

/// Storage decorator that fails a specific access.
class FaultInjectingStorage final : public Storage {
 public:
  /// Takes ownership of `inner`; forwards everything to it until the
  /// fault fires. The wrapper mirrors the inner capacity and model.
  explicit FaultInjectingStorage(std::unique_ptr<Storage> inner);

  /// Arms a fault: the `countdown`-th subsequent operation of `kind`
  /// (1 = the very next one) throws util::IoError.
  void arm(FaultKind kind, std::uint64_t countdown);

  /// Disarms any pending fault.
  void disarm();

  /// Number of times an armed fault has fired.
  std::uint64_t faults_fired() const { return fired_; }

 protected:
  std::uint64_t do_alloc(std::uint64_t size) override;
  void do_release(std::uint64_t handle) override;
  void do_read(void* dst, std::uint64_t handle, std::uint64_t offset,
               std::uint64_t size) override;
  void do_write(std::uint64_t handle, std::uint64_t offset, const void* src,
                std::uint64_t size) override;

 private:
  void maybe_fire(FaultKind kind);

  std::unique_ptr<Storage> inner_;
  std::map<std::uint64_t, Allocation> allocations_;
  bool armed_ = false;
  FaultKind kind_ = FaultKind::Read;
  std::uint64_t countdown_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace northup::mem
