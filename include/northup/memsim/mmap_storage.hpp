// Memory-mapped file storage tier — the core of northup::mmapio.
//
// FileStorage (Listing 4's path) round-trips every DRAM↔file move through
// pread/pwrite into a staging buffer, so the slowest tier pays one extra
// copy on top of the modeled bandwidth cost. MmapStorage keeps the same
// one-file-per-allocation layout but exposes each allocation as a
// MAP_SHARED mapping: mapped() hands the data layer the file's own pages,
// boundary moves become page-fault-driven memcpys straight into the
// mapping (or no copy at all when both sides are mapped), and madvise
// hints shape the kernel's paging. The StorageKind stays Ssd/Hdd, so
// planners, log_move's kIo phase attribution, and the §V-D storage
// projection all treat an mmap node exactly like the copying tier it
// replaces — only the transport changes.
#pragma once

#include <map>
#include <mutex>
#include <string>

#include "northup/io/mmap_file.hpp"
#include "northup/memsim/storage.hpp"

namespace northup::mem {

/// File-backed storage whose allocations are live mmap regions.
class MmapStorage final : public Storage {
 public:
  struct Options {
    /// Advice applied to every fresh mapping (kNormal = leave the
    /// kernel's default readahead in place).
    io::Advice default_advice = io::Advice::kNormal;
    /// Run a touch-ahead prefetch over a mapping right after allocation,
    /// paying the page-fault cost off the consumer's critical path.
    bool prefetch_on_alloc = false;
    /// madvise(DONTNEED) a mapping's pages on release so a long-running
    /// process hands cold file cache back to the kernel eagerly.
    bool drop_on_release = true;
  };

  /// `dir` must exist; one `<name>_map_<handle>.bin` file per allocation.
  MmapStorage(std::string name, StorageKind kind, std::uint64_t capacity,
              sim::BandwidthModel model, std::string dir)
      : MmapStorage(std::move(name), kind, capacity, model, std::move(dir),
                    Options()) {}
  MmapStorage(std::string name, StorageKind kind, std::uint64_t capacity,
              sim::BandwidthModel model, std::string dir, Options options);

  /// The mapping's bytes — allocations are always mapped, never nullptr.
  std::byte* mapped(const Allocation& allocation) override;

  /// Forwards an madvise hint for (a range of) one allocation; returns
  /// whether the kernel accepted it.
  bool advise(const Allocation& allocation, io::Advice advice,
              std::uint64_t offset = 0, std::uint64_t len = 0);

  /// Touch-ahead prefetch of one allocation (see MmapFile::prefetch);
  /// returns the number of bytes walked.
  std::uint64_t prefetch(const Allocation& allocation,
                         std::uint64_t offset = 0, std::uint64_t len = 0);

  /// msync of one allocation's dirty pages (wait = MS_SYNC).
  void sync(const Allocation& allocation, bool wait = true);

  /// Base "storage.<name>.*" set plus "io.mmap.*" (maps, unmaps,
  /// prefetches, prefetched_bytes, advices, syncs, and a mapped_bytes
  /// gauge shared by every MmapStorage attached to the registry).
  void attach_metrics(obs::MetricsRegistry& registry) override;

 protected:
  std::uint64_t do_alloc(std::uint64_t size) override;
  void do_release(std::uint64_t handle) override;
  void do_read(void* dst, std::uint64_t handle, std::uint64_t offset,
               std::uint64_t size) override;
  void do_write(std::uint64_t handle, std::uint64_t offset, const void* src,
                std::uint64_t size) override;

 private:
  /// Resolves the handle's mapping under the map lock; the reference
  /// stays valid afterwards (map nodes are stable and live allocations
  /// are never released concurrently with an access to them).
  io::MmapFile& map_for(std::uint64_t handle);

  std::mutex map_mu_;
  std::string dir_;
  Options options_;
  std::uint64_t next_handle_ = 1;
  std::uint64_t mapped_bytes_ = 0;  ///< guarded by map_mu_
  std::map<std::uint64_t, io::MmapFile> maps_;

  struct MetricSet {
    obs::Counter* maps = nullptr;
    obs::Counter* unmaps = nullptr;
    obs::Counter* prefetches = nullptr;
    obs::Counter* prefetched_bytes = nullptr;
    obs::Counter* advices = nullptr;
    obs::Counter* syncs = nullptr;
    obs::Gauge* mapped_bytes = nullptr;
  };
  MetricSet mmap_metrics_;  ///< guarded by map_mu_
};

}  // namespace northup::mem
