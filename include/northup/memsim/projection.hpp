// Faster-storage projection — the first-order emulator of §V-D.
//
// "we develop an emulator capable of performing a first-order projection by
//  keeping track of read/writes issued by application I/Os and considering
//  read/write bandwidths of the storage. We also include the I/O time into
//  the overall runtime (the other components being constant)."
//
// The Storage layer records an IoRecord per access; this module re-costs
// that trace under a candidate (read, write) bandwidth pair and folds the
// projected I/O time back into the measured total, holding every non-I/O
// component constant.
#pragma once

#include <string>
#include <vector>

#include "northup/memsim/storage.hpp"
#include "northup/sim/models.hpp"

namespace northup::mem {

/// Total time to serially execute an I/O trace under `model`.
double replay_trace_time(const std::vector<IoRecord>& trace,
                         const sim::BandwidthModel& model);

/// One point of the Fig 9 sweep.
struct ProjectionPoint {
  std::string label;            ///< e.g. "2000/1000"
  double io_time = 0.0;         ///< projected serial I/O time (s)
  double overall_time = 0.0;    ///< projected end-to-end time (s)
};

/// Projects the overall runtime for a faster storage device:
/// overall' = (baseline_total - baseline_io) + replay(trace, new_model).
ProjectionPoint project_storage(const std::vector<IoRecord>& trace,
                                const sim::BandwidthModel& new_model,
                                double baseline_io_time,
                                double baseline_total_time,
                                std::string label);

/// The paper's sweep: (1400/600) .. (3500/2100) MB/s read/write points.
std::vector<sim::BandwidthModel> fig9_storage_sweep();
std::vector<std::string> fig9_storage_labels();

}  // namespace northup::mem
