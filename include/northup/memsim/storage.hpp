// Storage backends for Northup memory/storage tree nodes.
//
// A Storage is the physical space behind one memory node of the topological
// tree (§III-B): DRAM, NVM, GPU device memory, or a file-backed SSD/HDD.
// Each backend provides
//   * functional allocation + byte-exact read/write (so out-of-core
//     algorithms really round-trip their data), and
//   * a first-order cost model (BandwidthModel) that the runtime charges
//     into the EventSim for every access.
// Capacity is tracked on every alloc/release; exceeding it throws
// CapacityError, which is what forces the recursive decomposition to pick
// chunk sizes that fit the child level (§III-C).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "northup/io/posix_file.hpp"
#include "northup/obs/metrics.hpp"
#include "northup/sim/models.hpp"
#include "northup/util/aligned.hpp"
#include "northup/util/assert.hpp"

namespace northup::io {
class AsyncIoPool;
}  // namespace northup::io

namespace northup::mem {

/// Physical kind of a memory/storage node. Determines which copy mechanism
/// move_data() selects (file I/O vs memcpy vs DMA) and how the node may be
/// accessed (device memory is disjoint: host code must stage through DRAM).
enum class StorageKind {
  Dram,        ///< host main memory
  Nvm,         ///< byte-addressable non-volatile memory tier
  Ssd,         ///< file-backed flash storage
  Hdd,         ///< file-backed rotating storage
  DeviceMem,   ///< discrete-accelerator device memory (disjoint space)
  Scratchpad,  ///< on-chip software-managed memory (GPU local memory)
};

const char* to_string(StorageKind kind);

/// True for kinds whose backing store is the filesystem (I/O path);
/// false for byte-addressable kinds (memcpy/DMA path).
bool is_file_backed(StorageKind kind);

/// True for kinds a host pointer can address directly.
bool is_host_addressable(StorageKind kind);

/// Opaque allocation handle within one Storage.
struct Allocation {
  std::uint64_t handle = 0;
  std::uint64_t size = 0;
  bool valid = false;
};

/// One recorded access, for the §V-D storage-projection replay.
struct IoRecord {
  bool is_write = false;
  std::uint64_t bytes = 0;
};

/// Aggregate access counters per storage node.
struct StorageStats {
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t num_reads = 0;
  std::uint64_t num_writes = 0;
  std::uint64_t num_allocs = 0;
  std::uint64_t num_releases = 0;
  std::uint64_t peak_used = 0;
};

/// Abstract storage node backend.
///
/// Thread-safe: accounting (capacity, stats, trace) is guarded by an
/// internal mutex and alloc/release serialize, but the byte copies behind
/// read()/write() run outside that lock — concurrent accesses to one node
/// overlap on the wall clock (each node models an engine with real
/// parallel channels; the EventSim still serializes its *virtual* time
/// per resource). trace() is only safe to read when the node is quiescent.
class Storage {
 public:
  Storage(std::string name, StorageKind kind, std::uint64_t capacity,
          sim::BandwidthModel model);
  virtual ~Storage() = default;
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  const std::string& name() const { return name_; }
  StorageKind kind() const { return kind_; }
  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const {
    return used_.load(std::memory_order_relaxed);
  }
  std::uint64_t available() const { return capacity_ - used(); }
  const sim::BandwidthModel& model() const { return model_; }
  void set_model(const sim::BandwidthModel& model) { model_ = model; }

  /// Paced mode emulates the bandwidth model on the wall clock: every
  /// read()/write() sleeps out whatever remains of the modeled access
  /// cost after the real copy. With pacing on, the flight recorder (and
  /// the measured critical path) reflect the *simulated* machine, so
  /// transfer/compute overlap is physically observable instead of only
  /// appearing in virtual time. Set before the node is accessed
  /// concurrently; each access paces independently (the node models an
  /// engine with parallel channels, same as the locking contract above).
  void set_paced(bool paced) {
    paced_.store(paced, std::memory_order_relaxed);
  }
  bool paced() const { return paced_.load(std::memory_order_relaxed); }

  /// Allocates `size` bytes; throws util::CapacityError when the node is
  /// full (callers use this to size their chunking).
  Allocation alloc(std::uint64_t size);

  /// Releases an allocation. Double-release is a checked error.
  void release(Allocation& allocation);

  /// Copies bytes out of the allocation into host memory.
  void read(void* dst, const Allocation& src, std::uint64_t offset,
            std::uint64_t size);

  /// Copies bytes from host memory into the allocation.
  void write(Allocation& dst, std::uint64_t offset, const void* src,
             std::uint64_t size);

  /// Direct pointer to an allocation's bytes when this backend can expose
  /// one (HostStorage heap buffers, MmapStorage file mappings); nullptr
  /// otherwise. A non-null result lets the data layer hand out zero-copy
  /// views and skip the staging copy; callers that bypass read()/write()
  /// through it must charge the modeled cost via note_access(). Decorators
  /// (fault injection) keep the nullptr default so their intercepted
  /// read()/write() path stays authoritative.
  virtual std::byte* mapped(const Allocation& allocation);

  /// Accounting-only access: charges stats, metrics, the §V-D replay
  /// trace, and — when paced — sleeps out the full modeled access cost,
  /// exactly as read()/write() would, without copying any bytes. Used for
  /// in-place accesses through mapped(), so zero-copy moves cost the same
  /// as staged ones in every model-facing channel.
  void note_access(bool is_write, std::uint64_t bytes);

  /// Model-derived access costs (seconds), charged by the runtime.
  double sim_read_time(std::uint64_t bytes) const {
    return model_.read_time(bytes);
  }
  double sim_write_time(std::uint64_t bytes) const {
    return model_.write_time(bytes);
  }

  StorageStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void reset_stats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = {};
    trace_.clear();
  }

  /// When enabled, every read/write is appended to trace() — the input to
  /// the §V-D faster-storage projection.
  void set_trace_enabled(bool enabled) { trace_enabled_ = enabled; }
  const std::vector<IoRecord>& trace() const { return trace_; }

  /// Mirrors every access/alloc into `registry` under
  /// "storage.<name>.*" (bytes_read, bytes_written, reads, writes,
  /// allocs, releases, plus a peak_used_bytes gauge). The registry must
  /// outlive this storage. Subclasses with extra telemetry (MmapStorage's
  /// "io.mmap.*") override and call the base first.
  virtual void attach_metrics(obs::MetricsRegistry& registry);

 protected:
  virtual std::uint64_t do_alloc(std::uint64_t size) = 0;
  virtual void do_release(std::uint64_t handle) = 0;
  virtual void do_read(void* dst, std::uint64_t handle, std::uint64_t offset,
                       std::uint64_t size) = 0;
  virtual void do_write(std::uint64_t handle, std::uint64_t offset,
                        const void* src, std::uint64_t size) = 0;

 private:
  /// Sleeps until `deadline` when pacing is enabled and the real access
  /// finished early. No-op otherwise.
  void pace_until(std::chrono::steady_clock::time_point deadline) const;

  std::string name_;
  StorageKind kind_;
  std::uint64_t capacity_;
  std::atomic<std::uint64_t> used_{0};
  std::atomic<bool> paced_{false};
  sim::BandwidthModel model_;
  mutable std::mutex mu_;  ///< guards stats_, trace_, metrics_, alloc/release
  StorageStats stats_;
  bool trace_enabled_ = false;
  std::vector<IoRecord> trace_;

  /// Optional always-on telemetry (null when no registry is attached).
  struct MetricSet {
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_written = nullptr;
    obs::Counter* reads = nullptr;
    obs::Counter* writes = nullptr;
    obs::Counter* allocs = nullptr;
    obs::Counter* releases = nullptr;
    obs::Gauge* peak_used = nullptr;
  };
  MetricSet metrics_;
};

/// Byte-addressable storage backed by host heap allocations. Used for
/// DRAM, NVM, device-memory, and scratchpad nodes (functionally the data
/// lives in host RAM; the cost model and access rules supply the
/// device-memory semantics).
class HostStorage final : public Storage {
 public:
  HostStorage(std::string name, StorageKind kind, std::uint64_t capacity,
              sim::BandwidthModel model);

  /// Direct pointer to an allocation's bytes — only valid for
  /// host-addressable kinds; the data layer uses this for zero-copy views.
  std::byte* raw(const Allocation& allocation);

  /// HostStorage is always mappable: mapped() is raw().
  std::byte* mapped(const Allocation& allocation) override;

 protected:
  std::uint64_t do_alloc(std::uint64_t size) override;
  void do_release(std::uint64_t handle) override;
  void do_read(void* dst, std::uint64_t handle, std::uint64_t offset,
               std::uint64_t size) override;
  void do_write(std::uint64_t handle, std::uint64_t offset, const void* src,
                std::uint64_t size) override;

 private:
  /// Resolves the handle's backing bytes under the map lock; the pointer
  /// stays valid afterwards (map nodes are stable and live allocations
  /// are never released concurrently with an access to them).
  std::byte* bytes_for(std::uint64_t handle);

  std::mutex map_mu_;
  std::uint64_t next_handle_ = 1;
  std::map<std::uint64_t, util::AlignedBuffer> buffers_;
};

/// File-backed storage: every allocation is one file in a directory, and
/// read/write are real pread/pwrite syscalls (Listing 4's file_write path).
class FileStorage final : public Storage {
 public:
  /// `dir` must exist. `direct_io` requests O_DIRECT|O_SYNC per §III-D.
  FileStorage(std::string name, StorageKind kind, std::uint64_t capacity,
              sim::BandwidthModel model, std::string dir,
              bool direct_io = false);

  /// Routes accesses of at least `min_bytes` through `pool`
  /// (striped/io_uring instead of one blocking pread/pwrite on the
  /// calling thread). nullptr restores the plain syscall path. The pool
  /// must outlive this storage; ignored while direct I/O is active (the
  /// pool's raw descriptors bypass PosixFile's O_DIRECT degrade logic).
  void set_async_pool(io::AsyncIoPool* pool,
                      std::uint64_t min_bytes = std::uint64_t{1} << 16);

 protected:
  std::uint64_t do_alloc(std::uint64_t size) override;
  void do_release(std::uint64_t handle) override;
  void do_read(void* dst, std::uint64_t handle, std::uint64_t offset,
               std::uint64_t size) override;
  void do_write(std::uint64_t handle, std::uint64_t offset, const void* src,
                std::uint64_t size) override;

 private:
  /// Resolves the handle's file under the map lock; the reference stays
  /// valid afterwards (map nodes are stable and live allocations are
  /// never released concurrently with an access to them).
  io::PosixFile& file_for(std::uint64_t handle);

  std::mutex map_mu_;
  std::string dir_;
  bool direct_io_;
  std::atomic<io::AsyncIoPool*> pool_{nullptr};
  std::uint64_t pool_min_bytes_ = 0;
  std::uint64_t next_handle_ = 1;
  std::map<std::uint64_t, io::PosixFile> files_;
};

}  // namespace northup::mem
