// Asynchronous file I/O workers — the copy engine of northup::mmapio.
//
// Storage kinds that still copy (mem::FileStorage's pread/pwrite path)
// serialize every move through one syscall on the calling thread. The
// AsyncIoPool gives them real I/O parallelism:
//
//   * submit_read/submit_write enqueue one positional operation and return
//     an IoFuture; the caller overlaps other work and joins later. An
//     exec::TaskGraph move node that dispatches here parks on a condition
//     variable instead of sitting inside the syscall, the same
//     don't-block-the-worker discipline exec::BackoffYield applies to
//     retry sleeps.
//   * pread_parallel/pwrite_parallel stripe one large transfer across the
//     workers (or, when the kernel supports it, submit the whole stripe
//     batch through io_uring in a single io_uring_enter), so a multi-MB
//     chunk move saturates the device queue instead of draining one
//     sequential syscall at a time.
//
// io_uring is a build-time feature (linux/io_uring.h present) *and* a
// runtime one (seccomp sandboxes commonly reject io_uring_setup); both
// probes degrade gracefully to the plain worker-thread backend, so the
// pool works — just without batched submission — everywhere POSIX does.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "northup/io/posix_file.hpp"
#include "northup/obs/metrics.hpp"

namespace northup::io {

/// Completion handle of one asynchronous I/O operation. Copyable (shared
/// state); get() rethrows the operation's util::IoError, if any.
class IoFuture {
 public:
  IoFuture() = default;

  bool valid() const { return state_ != nullptr; }
  bool ready() const;

  /// Blocks until the operation finished (successfully or not).
  void wait() const;

  /// wait(), then rethrows the operation's error if it failed.
  void get() const;

 private:
  friend class AsyncIoPool;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    std::exception_ptr error;
  };
  explicit IoFuture(std::shared_ptr<State> state) : state_(std::move(state)) {}

  std::shared_ptr<State> state_;
};

/// Fixed pool of I/O worker threads with an optional io_uring fast path
/// for striped batch transfers. Thread-safe; one pool is shared by every
/// file-backed storage node of a runtime.
class AsyncIoPool {
 public:
  struct Options {
    /// Worker threads. 0 = no workers: submissions run inline on the
    /// calling thread (still correct, never concurrent).
    std::size_t threads = 2;
    /// Striping granularity of the parallel helpers; transfers below one
    /// stripe run as a single operation.
    std::size_t stripe_bytes = std::size_t{1} << 20;
    /// Attempt the io_uring backend (compile- and runtime-detected).
    bool try_io_uring = true;
    /// Submission-queue depth requested from io_uring_setup.
    unsigned uring_entries = 64;
  };

  AsyncIoPool() : AsyncIoPool(Options()) {}
  explicit AsyncIoPool(Options options);
  ~AsyncIoPool();

  AsyncIoPool(const AsyncIoPool&) = delete;
  AsyncIoPool& operator=(const AsyncIoPool&) = delete;

  std::size_t threads() const { return workers_.size(); }
  std::size_t stripe_bytes() const { return options_.stripe_bytes; }

  /// True when striped transfers go through the io_uring backend.
  bool using_io_uring() const { return uring_ != nullptr; }

  /// Runtime probe: can this process create an io_uring at all? (False
  /// under seccomp policies that reject the syscall, or on old kernels.)
  static bool io_uring_supported();

  /// Enqueues one positional read of `bytes` at `offset`. The file must
  /// stay open and `dst` valid until the future completes.
  IoFuture submit_read(const PosixFile& file, void* dst, std::size_t bytes,
                       std::uint64_t offset);

  /// Enqueues one positional write (same lifetime rules).
  IoFuture submit_write(PosixFile& file, const void* src, std::size_t bytes,
                        std::uint64_t offset);

  /// Reads `bytes` at `offset`, striped across the workers (or one
  /// io_uring batch); returns when every stripe has landed. Throws the
  /// first stripe's error.
  void pread_parallel(const PosixFile& file, void* dst, std::size_t bytes,
                      std::uint64_t offset);

  /// Striped positional write; same contract as pread_parallel.
  void pwrite_parallel(PosixFile& file, const void* src, std::size_t bytes,
                       std::uint64_t offset);

  /// Mirrors activity into `registry` under "io.async.*" (requests,
  /// bytes_read, bytes_written, uring_batches, plus a queue high-water
  /// gauge). The registry must outlive this pool.
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  struct Request {
    bool write = false;
    int fd = -1;
    void* dst = nullptr;        // read target
    const void* src = nullptr;  // write source
    std::size_t bytes = 0;
    std::uint64_t offset = 0;
    std::string path;  // for error messages
    std::shared_ptr<IoFuture::State> state;
  };

  class Uring;  // raw-syscall io_uring ring (defined in async_pool.cpp)

  void worker_loop();
  /// Runs one request on the calling thread and completes its future.
  static void perform(const Request& request);
  static void complete(const std::shared_ptr<IoFuture::State>& state,
                       std::exception_ptr error);
  IoFuture enqueue(Request request);
  /// Splits [offset, offset+bytes) into stripe-sized slices; always at
  /// least one slice.
  std::vector<Request> make_stripes(bool write, const PosixFile& file,
                                    void* dst, const void* src,
                                    std::size_t bytes,
                                    std::uint64_t offset) const;
  /// Waits on every slice, rethrowing the first failure after all land.
  static void join_all(const std::vector<IoFuture>& futures);
  /// Batch path; returns false when the ring is unavailable and the
  /// caller should stripe through the workers instead.
  bool run_uring_batch(std::vector<Request>& stripes);

  Options options_;
  std::unique_ptr<Uring> uring_;
  std::mutex uring_mu_;  ///< one batch owns the ring at a time

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Request> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  struct MetricSet {
    obs::Counter* requests = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_written = nullptr;
    obs::Counter* uring_batches = nullptr;
    obs::Counter* inline_ops = nullptr;
    obs::Gauge* queue_high_water = nullptr;
  };
  MetricSet metrics_;
};

}  // namespace northup::io
