// RAII wrapper over POSIX file descriptors.
//
// Northup's file-backed storage nodes manage data with open/pread/pwrite
// (§III-D, Listing 4). The paper opens files with flags that bypass kernel
// caching (O_DIRECT, O_SYNC); we expose the same knob but default it off so
// the functional path works on any filesystem (tmpfs rejects O_DIRECT).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "northup/util/assert.hpp"

namespace northup::io {

/// Options controlling PosixFile::PosixFile.
struct OpenOptions {
  bool create = true;
  bool truncate = false;
  bool direct = false;  ///< O_DIRECT | O_SYNC, per the paper's setup
};

/// Access-pattern hints forwarded to posix_fadvise / madvise. Values the
/// platform does not support are silently ignored.
enum class Advice {
  kNormal,      ///< no special treatment
  kSequential,  ///< aggressive readahead, drop pages behind the cursor
  kRandom,      ///< disable readahead
  kWillNeed,    ///< fault pages in ahead of first use
  kDontNeed,    ///< drop clean pages; the working set has moved on
};

const char* to_string(Advice advice);

/// Move-only owning file descriptor with positional I/O helpers.
/// All operations throw util::IoError on failure.
class PosixFile {
 public:
  PosixFile() = default;

  /// Opens (and by default creates) `path` for read/write.
  explicit PosixFile(const std::string& path, OpenOptions options = {});

  PosixFile(PosixFile&& other) noexcept;
  PosixFile& operator=(PosixFile&& other) noexcept;
  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;
  ~PosixFile();

  bool is_open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

  /// Reads exactly `size` bytes at `offset` (loops over short reads).
  void pread_exact(void* dst, std::size_t size, std::uint64_t offset) const;

  /// Writes exactly `size` bytes at `offset` (loops over short writes).
  void pwrite_exact(const void* src, std::size_t size, std::uint64_t offset);

  /// Extends or shrinks the file to `size` bytes.
  void truncate(std::uint64_t size);

  /// Current file size in bytes.
  std::uint64_t size() const;

  /// Flushes file data to stable storage.
  void fsync_file();

  /// posix_fadvise over [offset, offset+len) (len 0 = to end of file).
  /// Best-effort like madvise: returns whether the kernel accepted the
  /// hint; platforms without posix_fadvise degrade to a no-op.
  bool fadvise(Advice advice, std::uint64_t offset = 0,
               std::uint64_t len = 0);

  /// Reserves backing blocks for [0, size) via posix_fallocate so later
  /// writes cannot fail with ENOSPC mid-stream. Filesystems that cannot
  /// preallocate (EOPNOTSUPP/EINVAL) degrade to extending the file with
  /// truncate; returns whether blocks were really reserved.
  bool preallocate(std::uint64_t size);

  void close();

  /// Whether O_DIRECT is currently active on the descriptor. Direct mode
  /// degrades to buffered I/O automatically when the filesystem rejects
  /// the open or an unaligned access (EINVAL) is attempted.
  bool is_direct() const { return direct_; }

 private:
  /// Reopens the file buffered after a direct-mode EINVAL.
  void reopen_buffered();

  int fd_ = -1;
  std::string path_;
  bool direct_ = false;
};

/// Creates a unique scratch directory (under $TMPDIR or /tmp) and removes
/// it with all contents on destruction. Used for file-backed storage nodes
/// and for the chunked preprocessing outputs (§V-B).
class TempDir {
 public:
  /// `tag` becomes part of the directory name for debuggability.
  explicit TempDir(const std::string& tag = "northup");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

  /// Joins a file name onto the directory path.
  std::string file(const std::string& name) const;

 private:
  std::string path_;
};

}  // namespace northup::io
