// Chunked file store — the out-of-core preprocessing step of §V-B.
//
// "There is a one-time overhead of preprocessing the original file and
//  reorganizing it in one or multiple files for chunking." The store holds
// one file per chunk so each data_down() at the root maps to one contiguous
// sequential read, which is what gives the regular-block workloads their
// good I/O behaviour (§V-B).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "northup/io/posix_file.hpp"

namespace northup::io {

/// Directory of numbered chunk files with exact-size read/write.
class ChunkedFileStore {
 public:
  /// `dir` must already exist; chunk files are created inside it. Any
  /// `chunk_<id>.bin` files already present are adopted, so a store can
  /// be reopened over a previous run's preprocessing output.
  explicit ChunkedFileStore(std::string dir);

  /// Writes (creating or replacing) chunk `id`.
  void write_chunk(std::uint64_t id, const void* data, std::size_t bytes);

  /// Reads `bytes` starting at `offset` within chunk `id`.
  void read_chunk(std::uint64_t id, void* dst, std::size_t bytes,
                  std::uint64_t offset = 0) const;

  /// Size in bytes of chunk `id`; throws if absent.
  std::uint64_t chunk_bytes(std::uint64_t id) const;

  bool has_chunk(std::uint64_t id) const;
  std::size_t chunk_count() const { return files_.size(); }

  /// Removes a chunk's file and forgets it.
  void erase_chunk(std::uint64_t id);

  const std::string& dir() const { return dir_; }

 private:
  PosixFile& open_chunk(std::uint64_t id, bool create) const;

  std::string dir_;
  mutable std::map<std::uint64_t, PosixFile> files_;
};

/// Splits a row-major `rows x cols` matrix of `elem_size`-byte elements
/// into contiguous `tile_rows x tile_cols` tile files. Tile (tr, tc) gets
/// chunk id `tr * ceil(cols/tile_cols) + tc`. Edge tiles are clipped.
/// Returns the number of tiles written.
std::size_t write_tiled_matrix(ChunkedFileStore& store, const void* data,
                               std::size_t rows, std::size_t cols,
                               std::size_t elem_size, std::size_t tile_rows,
                               std::size_t tile_cols);

/// Reads tile (tr, tc) produced by write_tiled_matrix back into `dst`,
/// which must hold `min(tile_rows, rows - tr*tile_rows) *
/// min(tile_cols, cols - tc*tile_cols)` elements, row-major, contiguous.
void read_matrix_tile(const ChunkedFileStore& store, void* dst,
                      std::size_t rows, std::size_t cols,
                      std::size_t elem_size, std::size_t tile_rows,
                      std::size_t tile_cols, std::size_t tr, std::size_t tc);

}  // namespace northup::io
