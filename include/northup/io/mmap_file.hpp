// Memory-mapped file — the zero-copy storage primitive of northup::mmapio.
//
// A MmapFile owns a PosixFile plus one MAP_SHARED mapping of its contents:
// the mapped bytes *are* the file, so a buffer backed by one crosses the
// DRAM/storage boundary by page fault instead of by pread/pwrite into a
// staging copy. Modeled on the MemoryMapped::Vector of Shasta /
// ExpressionMatrix2, which keep multi-GB working sets mapped and process
// them multithreaded; here the mapping backs mem::MmapStorage allocations
// and the data plane's zero-copy views.
//
// All operations throw util::IoError on failure. Advice and prefetch are
// best-effort hints: where madvise (or a specific advice value) is
// unavailable they degrade to no-ops rather than failing, so callers never
// need to feature-test the platform themselves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "northup/io/posix_file.hpp"

namespace northup::io {

/// Move-only owner of a file plus a shared writable mapping of it.
/// Advice values (io::Advice, shared with PosixFile::fadvise) are
/// forwarded to madvise here.
class MmapFile {
 public:
  MmapFile() = default;

  /// Opens (and by default creates) `path`, grows it to `size` bytes if
  /// shorter, and maps [0, size). `size` must be positive.
  MmapFile(const std::string& path, std::uint64_t size,
           OpenOptions options = {});

  /// Adopts an already-open file and maps [0, size).
  MmapFile(PosixFile file, std::uint64_t size);

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Unmaps and closes. Dirty pages are left to the kernel's writeback
  /// (call sync() first when durability matters before close).
  ~MmapFile();

  bool is_mapped() const { return data_ != nullptr; }
  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::uint64_t size() const { return size_; }
  const std::string& path() const { return file_.path(); }
  PosixFile& file() { return file_; }

  /// Grows (or shrinks) the file and remaps it. Existing pointers into
  /// the mapping are invalidated.
  void resize(std::uint64_t new_size);

  /// msync of [offset, offset+len) — len 0 means "to the end of the
  /// mapping". `wait` selects MS_SYNC (block until the pages are on
  /// stable storage) vs MS_ASYNC (schedule writeback).
  void sync(std::uint64_t offset = 0, std::uint64_t len = 0,
            bool wait = true);

  /// madvise over [offset, offset+len) (len 0 = whole mapping).
  /// Unsupported advice values degrade to a no-op; returns whether the
  /// kernel accepted the hint.
  bool advise(Advice advice, std::uint64_t offset = 0, std::uint64_t len = 0);

  /// Touch-ahead prefetch: an madvise(WILLNEED) over the range followed
  /// by reading one byte per page, so the page-fault cost is paid here —
  /// off the consumer's critical path — instead of at first access.
  /// Returns the number of bytes walked.
  std::uint64_t prefetch(std::uint64_t offset = 0, std::uint64_t len = 0);

  /// Unmaps without closing the file (idempotent).
  void unmap();

  /// Unmaps and closes the file (idempotent).
  void close();

  /// The system page size (cached).
  static std::uint64_t page_size();

 private:
  void map_now();
  /// Clamps an (offset, len-0-means-rest) request to the mapping and
  /// aligns the start down to a page boundary, as msync/madvise require.
  struct Range {
    std::byte* addr;
    std::size_t len;
  };
  Range page_range(std::uint64_t offset, std::uint64_t len) const;

  PosixFile file_;
  std::byte* data_ = nullptr;
  std::uint64_t size_ = 0;
};

}  // namespace northup::io
