// google-benchmark micro-benchmarks for the substrate layers: EventSim
// scheduling throughput, Chase-Lev deque operations, unified data moves,
// and the functional leaf kernels.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "northup/algos/dense.hpp"
#include "northup/algos/gemm.hpp"
#include "northup/core/runtime.hpp"
#include "northup/sched/chase_lev.hpp"
#include "northup/sim/event_sim.hpp"
#include "northup/topo/presets.hpp"

namespace ns = northup::sim;
namespace nsc = northup::sched;
namespace nc = northup::core;
namespace nt = northup::topo;
namespace na = northup::algos;

// --- EventSim: task-insertion/scheduling throughput. ---

static void BM_EventSimAddTask(benchmark::State& state) {
  ns::EventSim sim;
  const auto r0 = sim.add_resource("io");
  const auto r1 = sim.add_resource("gpu");
  ns::TaskId prev = ns::kInvalidTask;
  for (auto _ : state) {
    const auto read = sim.add_task("r", "io", r0, 1e-3);
    std::vector<ns::TaskId> deps{read};
    if (prev != ns::kInvalidTask) deps.push_back(prev);
    prev = sim.add_task("k", "gpu", r1, 1e-3, deps);
    if (sim.task_count() > 1000000) {
      sim.reset_tasks();
      prev = ns::kInvalidTask;
    }
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_EventSimAddTask);

// --- Chase-Lev deque: owner-side push/pop and steals. ---

static void BM_ChaseLevPushPop(benchmark::State& state) {
  nsc::ChaseLevDeque<std::uint64_t> dq(1 << 12);
  std::uint64_t v = 0;
  for (auto _ : state) {
    dq.push_bottom(1);
    dq.pop_bottom(v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChaseLevPushPop);

static void BM_ChaseLevSteal(benchmark::State& state) {
  nsc::ChaseLevDeque<std::uint64_t> dq(1 << 12);
  std::uint64_t v = 0;
  for (auto _ : state) {
    dq.push_bottom(1);
    dq.steal_top(v);
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChaseLevSteal);

// --- Unified data moves through the two core paths. ---

static void BM_MoveDramToDram(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  const auto opts = northup::bench::substrate_options();
  nc::RuntimeOptions ropts;
  ropts.enable_sim = false;  // functional cost only
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd, opts),
                 ropts);
  const auto dram = rt.tree().find("dram");
  auto a = rt.dm().alloc(bytes, dram);
  auto b = rt.dm().alloc(bytes, dram);
  for (auto _ : state) {
    rt.dm().move_data(b, a, {.size = bytes});
  }
  rt.dm().release(a);
  rt.dm().release(b);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MoveDramToDram)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

static void BM_MoveFileToDram(benchmark::State& state) {
  const auto bytes = static_cast<std::uint64_t>(state.range(0));
  nc::RuntimeOptions ropts;
  ropts.enable_sim = false;
  nc::Runtime rt(nt::apu_two_level(), ropts);
  auto src = rt.dm().alloc(bytes, rt.tree().root());
  auto dst = rt.dm().alloc(bytes, rt.tree().find("dram"));
  for (auto _ : state) {
    rt.dm().move_data(dst, src, {.size = bytes});
  }
  rt.dm().release(src);
  rt.dm().release(dst);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MoveFileToDram)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

// --- Functional leaf kernels (host execution throughput). ---

static void BM_GemmLeafKernel(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto opts = northup::bench::substrate_options();
  nc::RuntimeOptions ropts;
  ropts.enable_sim = false;
  nc::Runtime rt(nt::apu_two_level(northup::mem::StorageKind::Ssd, opts),
                 ropts);
  const auto dram = rt.tree().find("dram");
  auto a = rt.dm().alloc(n * n * 4, dram);
  auto b = rt.dm().alloc(n * n * 4, dram);
  auto c = rt.dm().alloc(n * n * 4, dram);

  for (auto _ : state) {
    rt.run_from(dram, [&](nc::ExecContext& ctx) {
      na::gemm_leaf(ctx, {&a, 0, n * 4}, {&b, 0, n * 4}, {&c, 0, n * 4}, n,
                    n, n, 16);
    });
  }
  for (auto* buf : {&a, &b, &c}) rt.dm().release(*buf);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_GemmLeafKernel)->Arg(64)->Arg(128)->Arg(256);

static void BM_HotspotReferenceStep(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  na::Matrix temp = na::random_matrix(n, n, 1);
  na::Matrix power = na::random_matrix(n, n, 2);
  na::Matrix out(n, n);
  na::HotSpotParams params;
  for (auto _ : state) {
    na::hotspot_step(temp, power, out, params);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n * n));
}
BENCHMARK(BM_HotspotReferenceStep)->Arg(256)->Arg(512);

BENCHMARK_MAIN();
