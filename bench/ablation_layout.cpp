// Ablation for §VI "Data Layout": transform chunks while they migrate
// across memory levels vs. let the consumer do strided accesses.
//
// Scenario: a column-major consumer (e.g. a kernel walking columns) reads
// an N x N row-major chunk from storage. Either (a) the chunk moves as-is
// and every consumer pass gathers columns (strided file reads), or (b)
// move_transposed() reorganizes it once in flight and the consumer streams
// contiguously. "Layout transformation is beneficial for applications
// with sufficient data reuse" — so we sweep the number of consumer passes.
#include <cstdio>

#include "bench_common.hpp"
#include "northup/data/layout.hpp"

namespace nb = northup::bench;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nd = northup::data;
namespace nu = northup::util;

namespace {

constexpr std::uint64_t kDim = 512;
constexpr std::uint64_t kBytes = kDim * kDim * 4;

/// Consumer reading `passes` column sweeps directly from storage
/// (strided: one access per column segment).
double run_strided(std::uint64_t passes, const nu::Flags& flags) {
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd,
                                   nb::gemm_outofcore_options(
                                       nm::StorageKind::Ssd)));
  auto& dm = rt.dm();
  auto src = dm.alloc(kBytes, rt.tree().root());
  auto dst = dm.alloc(kDim / 8 * 64 * 4, rt.tree().find("dram"));
  if (auto* es = rt.event_sim()) es->reset_tasks();
  src.ready = dst.ready = northup::sim::kInvalidTask;
  for (std::uint64_t p = 0; p < passes; ++p) {
    for (std::uint64_t col = 0; col < kDim; col += 64) {
      // Gather a 64-column panel: strided rows from the file.
      dm.move_block_2d(dst, src, kDim / 8, 64 * 4, 0, 64 * 4,
                       col * 4, kDim * 4);
    }
  }
  const double t = rt.makespan();
  nb::dump_observability(rt, flags, "strided-" + std::to_string(passes));
  dm.release(src);
  dm.release(dst);
  return t;
}

/// Transform once while staging, then stream contiguous panels.
double run_transformed(std::uint64_t passes, const nu::Flags& flags) {
  const auto opts = nb::with_staging(
      nb::gemm_outofcore_options(nm::StorageKind::Ssd),
      2 * kBytes);  // room for the transposed image
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, opts));
  auto& dm = rt.dm();
  auto src = dm.alloc(kBytes, rt.tree().root());
  auto transposed = dm.alloc(kBytes, rt.tree().find("dram"));
  auto dst = dm.alloc(kDim / 8 * 64 * 4, rt.tree().find("dram"));
  if (auto* es = rt.event_sim()) es->reset_tasks();
  src.ready = transposed.ready = dst.ready = northup::sim::kInvalidTask;

  nd::move_transposed(dm, transposed, src, kDim, kDim, 4);  // one-time
  for (std::uint64_t p = 0; p < passes; ++p) {
    for (std::uint64_t col = 0; col < kDim; col += 64) {
      // Former columns are now contiguous rows in DRAM.
      dm.move_data(dst, transposed,
                   {.size = kDim / 8 * 64 * 4, .src_offset = col * kDim * 4});
    }
  }
  const double t = rt.makespan();
  nb::dump_observability(rt, flags, "transformed-" + std::to_string(passes));
  for (auto* b : {&src, &transposed, &dst}) dm.release(*b);
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header(
      "Ablation: layout transformation during migration (§VI Data Layout)");

  nu::TextTable table;
  table.set_header({"consumer passes", "strided (ms)",
                    "transform-once (ms)", "speedup"});
  for (std::uint64_t passes : {1ULL, 2ULL, 4ULL, 8ULL}) {
    const double strided = run_strided(passes, flags);
    const double transformed = run_transformed(passes, flags);
    table.add_row({std::to_string(passes),
                   nu::TextTable::num(strided * 1e3, 2),
                   nu::TextTable::num(transformed * 1e3, 2),
                   nu::TextTable::num(strided / transformed, 2) + "x"});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: the one-time transform loses at 1 pass-ish workloads "
      "and wins with reuse (the paper's criterion)\n");
  return 0;
}
