// Ablation for §III-C/§V-E multi-branch scheduling: spawning chunks
// across the subtrees of the Fig 2 asymmetric machine with the
// queue-aware SubtreeBalancer vs. pinning all chunks to one branch.
//
// Each chunk is a fixed-size kernel on whatever leaf its branch reaches;
// the branches end in processors of very different speeds (a CPU leaf on
// one side, a discrete GPU on the other), so single-branch scheduling
// leaves most of the machine idle.
#include <cstdio>

#include "bench_common.hpp"
#include "northup/core/balancer.hpp"
#include "northup/topo/presets.hpp"

namespace nb = northup::bench;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nu = northup::util;

namespace {

constexpr std::uint64_t kChunks = 64;
constexpr double kChunkFlops = 2e9;
constexpr double kChunkBytes = 1e6;

/// Runs one chunk at whatever leaf lies below `ctx` (first-child path),
/// charging the leaf's processor.
void run_chunk(nc::ExecContext& ctx) {
  if (!ctx.is_leaf()) {
    ctx.northup_spawn(ctx.child(0), run_chunk);
    return;
  }
  auto* proc = ctx.get_devices().front();
  proc->launch_costed("chunk", 16, {kChunkFlops, kChunkBytes});
}

enum class Policy { PinCpu, PinGpu, NaiveEven, SpeedAware };

double run(Policy policy, const nu::Flags& flags, const char* tag) {
  nc::Runtime rt(nt::asymmetric_fig2());
  nc::SubtreeBalancer balancer(rt);
  rt.run([&](nc::ExecContext& ctx) {
    switch (policy) {
      case Policy::PinCpu:
      case Policy::PinGpu: {
        const std::size_t branch = policy == Policy::PinCpu ? 0 : 1;
        for (std::uint64_t i = 0; i < kChunks; ++i) {
          ctx.northup_spawn(ctx.child(branch), run_chunk);
        }
        break;
      }
      case Policy::NaiveEven:
        balancer.balanced_spawn(ctx, kChunks,
                                [](nc::ExecContext& c, std::uint64_t) {
                                  run_chunk(c);
                                });
        break;
      case Policy::SpeedAware: {
        const northup::device::KernelCost cost{kChunkFlops, kChunkBytes};
        std::map<nt::NodeId, double> speeds;
        for (const auto child :
             rt.tree().get_children_list(ctx.get_cur_treenode())) {
          speeds[child] = nc::subtree_speed(rt, child, cost);
        }
        balancer.balanced_spawn_weighted(
            ctx, kChunks, 1.0, speeds,
            [](nc::ExecContext& c, std::uint64_t) { run_chunk(c); });
        break;
      }
    }
  });
  nb::dump_observability(rt, flags, tag);
  return rt.makespan();
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header(
      "Ablation: balanced multi-branch spawning on the Fig 2 asymmetric "
      "tree");

  const double cpu_branch = run(Policy::PinCpu, flags, "pin-cpu");
  const double gpu_branch = run(Policy::PinGpu, flags, "pin-gpu");
  const double naive = run(Policy::NaiveEven, flags, "naive-even");
  const double weighted = run(Policy::SpeedAware, flags, "speed-aware");
  const double best_single = std::min(cpu_branch, gpu_branch);

  nu::TextTable table;
  table.set_header({"policy", "makespan (ms)", "vs best single branch"});
  auto row = [&](const char* name, double t) {
    table.add_row({name, nu::TextTable::num(t * 1e3, 2),
                   nu::TextTable::num(best_single / t, 2) + "x"});
  };
  row("all chunks -> CPU branch", cpu_branch);
  row("all chunks -> GPU branch", gpu_branch);
  row("naive even split", naive);
  row("speed-aware (LPT) split", weighted);
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: an even split loses to GPU-only on a 100:1-skewed "
      "tree; the speed-aware split beats every pinned branch\n");
  return 0;
}
