// Open-loop overload harness for the northup::svc job service (ISSUE 9).
//
// Phase 0 runs each job kind once on an idle one-worker service and
// records its result hash — the bit-identical reference. Phase 1
// saturates the service closed-loop to measure its peak service rate.
// Phase 2 then offers open-loop Poisson arrivals at 0.5x / 1x / 2x / 4x
// that saturation rate against a fresh service with the overload layer
// armed (per-tenant token buckets, deadline-feasibility rejection,
// CoDel shedding, brownout), every job carrying a deadline. Phase 3
// times the admission-path rejection of hopeless deadlines.
//
// The claim under test is *graceful degradation*: past saturation the
// service should convert excess offered load into cheap typed
// rejections while goodput holds near peak and p99 stays bounded —
// instead of collapsing under queue churn. --overload-check turns the
// claim into exit-code gates (the CI smoke leg):
//
//   * goodput at 4x >= goodput_floor × the best phase goodput,
//   * p99 end-to-end at 4x <= p99_bound_s,
//   * per-reason svc.rejected.* counters exactly account for every
//     rejected handle, and submitted == admitted + submit-path
//     rejections, in every phase,
//   * every completed job's result hash equals the serial reference
//     (admitted work is never silently degraded — grants are pinned),
//   * infeasible deadlines are rejected in microseconds (mean under
//     infeasible_reject_bound_s).
//
// --json-out writes a northup_svc_overload summary consumed by
// scripts/check_json_artifacts.py; --trace-out / --metrics-out dump the
// 4x phase's job trace and metrics.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "northup/svc/service.hpp"
#include "northup/util/flags.hpp"
#include "northup/util/rng.hpp"
#include "northup/util/table.hpp"
#include "northup/util/timer.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nsv = northup::svc;
namespace nu = northup::util;

namespace {

constexpr int kKinds = 3;
const char* kTenants[kKinds] = {"alice", "bob", "carol"};
const double kWeights[kKinds] = {1.0, 2.0, 4.0};

/// Pinned per-job reservation: preferred == floor, so the admission
/// grant — and with it the decomposition and the result hash — is
/// identical at every brownout level and concurrency. Staging at 1 MiB
/// lets four jobs partition the 4 MiB machine staging.
nsv::JobFootprint pinned_footprint() {
  return {.root_bytes = 8ULL << 20,
          .staging_bytes = 1ULL << 20,
          .device_bytes = 0};
}

nsv::JobRequest make_request(int index, double deadline_s) {
  nsv::JobRequest request;
  const int kind = index % kKinds;
  switch (kind) {
    case 0: {
      na::GemmConfig c = nb::svc_gemm();
      c.hash_result = true;
      request.config = c;
      break;
    }
    case 1: {
      na::HotspotConfig c = nb::svc_hotspot();
      c.hash_result = true;
      request.config = c;
      break;
    }
    default: {
      na::SpmvConfig c = nb::svc_spmv();
      c.hash_result = true;
      request.config = c;
      break;
    }
  }
  request.tenant = kTenants[kind];
  request.weight = kWeights[kind];
  request.deadline_s = deadline_s;
  request.footprint = pinned_footprint();
  return request;
}

nsv::ServiceOptions base_options(const nb::OverloadPreset& preset) {
  nsv::ServiceOptions opts;
  opts.machine_levels = 2;  // APU preset: storage -> DRAM leaf
  opts.machine = nb::service_machine_options();
  opts.workers = preset.workers;
  opts.max_queue_depth = 64;
  opts.policy = nsv::SchedulingPolicy::WeightedFair;
  return opts;
}

std::uint64_t counter_or_zero(
    const std::map<std::string, std::uint64_t>& counters,
    const std::string& name) {
  const auto it = counters.find(name);
  return it != counters.end() ? it->second : 0;
}

struct PhaseResult {
  double multiplier = 0.0;
  double wall_s = 0.0;
  std::uint64_t offered = 0;
  std::uint64_t admitted = 0;
  std::uint64_t done = 0;
  std::uint64_t expired = 0;
  std::uint64_t shed = 0;
  std::uint64_t rate_limited = 0;
  std::uint64_t queue_full = 0;
  std::uint64_t infeasible = 0;
  std::uint64_t failed = 0;
  double goodput = 0.0;  ///< completed jobs per wall second
  double p99_e2e = 0.0;
  std::uint64_t brownout_transitions = 0;
  bool accounting_ok = true;
  bool hashes_ok = true;
};

/// One open-loop phase: Poisson arrivals at `rate_jobs_per_s` for
/// `preset.phase_seconds` against a fresh overload-armed service.
PhaseResult run_phase(const nb::OverloadPreset& preset, double multiplier,
                      double saturation_jobs_per_s, double mean_job_bytes,
                      const std::uint64_t (&reference_hash)[kKinds],
                      std::unique_ptr<nsv::JobService>* keep_service) {
  nsv::ServiceOptions opts = base_options(preset);
  opts.overload.enable = true;
  opts.overload.target_queue_delay_s = preset.target_queue_delay_s;
  opts.overload.shed_interval_s = preset.shed_interval_s;
  const double tenant_rate = preset.tenant_rate_fraction *
                             saturation_jobs_per_s * mean_job_bytes;
  opts.overload.default_rate_bytes_per_s = tenant_rate;
  opts.overload.default_burst_bytes =
      std::max(tenant_rate * preset.burst_seconds, 8.0 * mean_job_bytes);
  auto service = std::make_unique<nsv::JobService>(opts);

  const double rate = multiplier * saturation_jobs_per_s;
  const int total = std::max(1, static_cast<int>(
                                    std::ceil(rate * preset.phase_seconds)));
  nu::Xoshiro256 rng(preset.seed + static_cast<std::uint64_t>(
                                       multiplier * 1000.0));

  std::vector<nsv::JobHandle> handles;
  handles.reserve(static_cast<std::size_t>(total));
  nu::Timer wall;
  const auto start = std::chrono::steady_clock::now();
  double next_arrival_s = 0.0;
  for (int i = 0; i < total; ++i) {
    // Exponential interarrivals on an absolute schedule: if the
    // submitter falls behind it bursts to catch up (open loop — the
    // arrival process never waits for the service).
    next_arrival_s += -std::log(1.0 - rng.uniform()) / rate;
    const auto due = start + std::chrono::duration_cast<
                                 std::chrono::steady_clock::duration>(
                                 std::chrono::duration<double>(next_arrival_s));
    std::this_thread::sleep_until(due);
    handles.push_back(
        service->try_submit(make_request(i, preset.job_deadline_s)));
  }
  service->wait_all();

  PhaseResult r;
  r.multiplier = multiplier;
  r.wall_s = wall.seconds();
  r.offered = handles.size();

  std::uint64_t rejected_handles = 0;
  std::uint64_t cancelled = 0;
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const nsv::JobResult& result = handles[i].wait();
    switch (result.state) {
      case nsv::JobState::Done:
        ++r.done;
        if (result.stats.result_hash !=
            reference_hash[static_cast<int>(i) % kKinds]) {
          r.hashes_ok = false;
        }
        break;
      case nsv::JobState::Expired: ++r.expired; break;
      case nsv::JobState::Failed: ++r.failed; break;
      case nsv::JobState::Cancelled: ++cancelled; break;
      case nsv::JobState::Rejected: ++rejected_handles; break;
      default: break;
    }
  }
  r.goodput = r.wall_s > 0 ? static_cast<double>(r.done) / r.wall_s : 0.0;

  const auto counters = service->metrics().counter_values();
  r.admitted = counter_or_zero(counters, "svc.jobs.admitted");
  r.shed = counter_or_zero(counters, "svc.rejected.shed");
  r.rate_limited = counter_or_zero(counters, "svc.rejected.rate_limited");
  r.queue_full = counter_or_zero(counters, "svc.rejected.queue_full");
  r.infeasible = counter_or_zero(counters, "svc.rejected.infeasible_deadline");
  r.brownout_transitions =
      counter_or_zero(counters, "svc.brownout.transitions");

  // Accounting identities: every rejected handle maps to exactly one
  // svc.rejected.* increment, submit-path rejections explain the
  // submitted/admitted gap, and every handle reached a terminal state.
  const std::uint64_t per_reason =
      r.shed + r.rate_limited + r.queue_full + r.infeasible +
      counter_or_zero(counters, "svc.rejected.footprint_too_large");
  const std::uint64_t submitted =
      counter_or_zero(counters, "svc.jobs.submitted");
  r.accounting_ok =
      per_reason == rejected_handles && submitted == r.offered &&
      submitted == r.admitted + (per_reason - r.shed) &&
      r.offered ==
          r.done + r.expired + r.failed + cancelled + rejected_handles;

  const auto histograms = service->metrics().histogram_values();
  if (histograms.count("svc.latency.e2e")) {
    r.p99_e2e = histograms.at("svc.latency.e2e").p99;
  }

  if (keep_service) *keep_service = std::move(service);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick");
  const bool check = flags.get_bool("overload-check");
  const nb::OverloadPreset preset =
      quick ? nb::overload_quick_preset() : nb::overload_default_preset();

  nb::print_header("svc_overload: open-loop overload on the job service");
  std::printf("phase=%.1fs deadline=%.2fs workers=%zu %s%s\n\n",
              preset.phase_seconds, preset.job_deadline_s, preset.workers,
              quick ? "(quick) " : "", check ? "(check gates on)" : "");

  // Phase 0: serial reference hashes, one worker, overload off.
  std::uint64_t reference_hash[kKinds] = {0, 0, 0};
  {
    nsv::ServiceOptions opts = base_options(preset);
    opts.workers = 1;
    nsv::JobService service(opts);
    for (int kind = 0; kind < kKinds; ++kind) {
      const nsv::JobResult& result =
          service.submit(make_request(kind, /*deadline_s=*/0.0)).wait();
      if (result.state != nsv::JobState::Done) {
        std::fprintf(stderr, "reference job %d failed: %s\n", kind,
                     result.error.c_str());
        return 1;
      }
      reference_hash[kind] = result.stats.result_hash;
    }
  }

  // Phase 1: closed-loop saturation rate (overload off, no deadlines).
  double saturation_jobs_per_s = 0.0;
  double mean_job_bytes = 0.0;
  {
    nsv::JobService service(base_options(preset));
    nu::Timer wall;
    std::vector<nsv::JobHandle> handles;
    for (int i = 0; i < preset.calibration_jobs; ++i) {
      handles.push_back(service.submit(make_request(i, 0.0)));
    }
    service.wait_all();
    const double seconds = wall.seconds();
    std::uint64_t done = 0;
    for (auto& handle : handles) {
      if (handle.wait().state == nsv::JobState::Done) ++done;
    }
    saturation_jobs_per_s =
        seconds > 0 ? static_cast<double>(done) / seconds : 1.0;
    for (int kind = 0; kind < kKinds; ++kind) {
      mean_job_bytes +=
          nsv::work_estimate(make_request(kind, 0.0)).total_bytes() / kKinds;
    }
    std::printf("saturation: %.1f jobs/s (%llu/%d in %.2fs), "
                "mean job bytes %.0f\n\n",
                saturation_jobs_per_s, static_cast<unsigned long long>(done),
                preset.calibration_jobs, seconds, mean_job_bytes);
  }

  // Phase 2: the offered-load ladder.
  std::vector<PhaseResult> phases;
  std::unique_ptr<nsv::JobService> top_service;
  for (const double multiplier : preset.multipliers) {
    const bool top = multiplier == preset.multipliers[3];
    phases.push_back(run_phase(preset, multiplier, saturation_jobs_per_s,
                               mean_job_bytes, reference_hash,
                               top ? &top_service : nullptr));
  }

  nu::TextTable table;
  table.set_header({"offered", "jobs", "done", "goodput/s", "expired", "shed",
                    "ratelim", "qfull", "p99 (ms)", "brownout", "ok"});
  for (const PhaseResult& r : phases) {
    table.add_row({nu::TextTable::num(r.multiplier, 1) + "x",
                   std::to_string(r.offered), std::to_string(r.done),
                   nu::TextTable::num(r.goodput, 1),
                   std::to_string(r.expired), std::to_string(r.shed),
                   std::to_string(r.rate_limited),
                   std::to_string(r.queue_full),
                   nu::TextTable::num(r.p99_e2e * 1e3, 1),
                   std::to_string(r.brownout_transitions),
                   (r.accounting_ok && r.hashes_ok) ? "yes" : "NO"});
  }
  std::printf("%s\n", table.render().c_str());

  // Phase 3: admission-time rejection latency for hopeless deadlines.
  double infeasible_mean_s = 0.0;
  bool infeasible_all_typed = true;
  {
    nsv::ServiceOptions opts = base_options(preset);
    opts.overload.enable = true;
    nsv::JobService service(opts);
    const int probes = 50;
    nu::Timer timer;
    for (int i = 0; i < probes; ++i) {
      nsv::JobHandle handle = service.try_submit(make_request(i, 1e-7));
      if (!handle.done() ||
          handle.result().reject != nsv::RejectReason::InfeasibleDeadline) {
        infeasible_all_typed = false;
      }
    }
    infeasible_mean_s = timer.seconds() / probes;
    std::printf("infeasible-deadline rejection: %.1f us mean over %d probes "
                "(%s)\n",
                infeasible_mean_s * 1e6, probes,
                infeasible_all_typed ? "all typed" : "UNTYPED REJECTS");
  }

  double peak_goodput = 0.0;
  for (const PhaseResult& r : phases) {
    peak_goodput = std::max(peak_goodput, r.goodput);
  }
  const PhaseResult& at4x = phases.back();
  const double retention =
      peak_goodput > 0 ? at4x.goodput / peak_goodput : 0.0;
  std::printf("goodput at 4x: %.1f/s = %.0f%% of peak %.1f/s %s\n",
              at4x.goodput, retention * 100.0, peak_goodput,
              retention >= preset.goodput_floor ? "(graceful)"
                                                : "(COLLAPSED)");

  bool pass = true;
  if (check) {
    auto gate = [&pass](bool ok, const char* what) {
      if (!ok) {
        std::fprintf(stderr, "GATE FAILED: %s\n", what);
        pass = false;
      }
    };
    gate(retention >= preset.goodput_floor,
         "goodput at 4x under the graceful-degradation floor");
    gate(at4x.p99_e2e <= preset.p99_bound_s, "p99 e2e at 4x over bound");
    for (const PhaseResult& r : phases) {
      gate(r.accounting_ok, "rejection counters do not account for handles");
      gate(r.hashes_ok, "a completed job's hash differs from serial");
    }
    gate(infeasible_mean_s <= preset.infeasible_reject_bound_s,
         "infeasible-deadline rejection too slow");
    gate(infeasible_all_typed, "infeasible probes not all typed rejections");
    std::printf("overload-check: %s\n", pass ? "PASS" : "FAIL");
  }

  const std::string json_out = flags.get("json-out");
  if (!json_out.empty()) {
    std::ofstream out(json_out);
    out << "{\n  \"northup_svc_overload\": 1,\n";
    out << "  \"saturation_jobs_per_s\": " << saturation_jobs_per_s << ",\n";
    out << "  \"peak_goodput_jobs_per_s\": " << peak_goodput << ",\n";
    out << "  \"goodput_retention_at_4x\": " << retention << ",\n";
    out << "  \"infeasible_reject_mean_s\": " << infeasible_mean_s << ",\n";
    out << "  \"phases\": [\n";
    for (std::size_t i = 0; i < phases.size(); ++i) {
      const PhaseResult& r = phases[i];
      out << "    {\"multiplier\": " << r.multiplier
          << ", \"offered\": " << r.offered << ", \"admitted\": " << r.admitted
          << ", \"done\": " << r.done << ", \"expired\": " << r.expired
          << ", \"shed\": " << r.shed
          << ", \"rate_limited\": " << r.rate_limited
          << ", \"queue_full\": " << r.queue_full
          << ", \"infeasible_deadline\": " << r.infeasible
          << ", \"failed\": " << r.failed
          << ", \"goodput_jobs_per_s\": " << r.goodput
          << ", \"p99_e2e_s\": " << r.p99_e2e
          << ", \"brownout_transitions\": " << r.brownout_transitions
          << ", \"accounting_ok\": " << (r.accounting_ok ? "true" : "false")
          << ", \"hashes_ok\": " << (r.hashes_ok ? "true" : "false") << "}"
          << (i + 1 < phases.size() ? "," : "") << "\n";
    }
    out << "  ],\n";
    out << "  \"check\": " << (check ? (pass ? "\"pass\"" : "\"fail\"")
                                     : "\"off\"")
        << "\n}\n";
    std::printf("summary json -> %s\n", json_out.c_str());
  }

  if (top_service) {
    const std::string trace_out = flags.get("trace-out");
    if (!trace_out.empty()) {
      top_service->write_job_trace(trace_out);
      std::printf("job trace    -> %s\n", trace_out.c_str());
    }
    const std::string metrics_out = flags.get("metrics-out");
    if (!metrics_out.empty()) {
      top_service->write_metrics_json(metrics_out);
      std::printf("metrics json -> %s\n", metrics_out.c_str());
    }
  }
  return check && !pass ? 1 : 0;
}
