// Ablation for the northup::plan self-tuning loop (ISSUE 8): on every
// machine preset, run each application once with the hand-configured
// planner (recording the flight log), calibrate a plan::MachineProfile
// from that recording, round-trip it through JSON, and re-run with the
// plan::AutoTuner driving chunk sizes, execution mode, CSR cutoffs, and
// child ranking. Reports tuned-vs-hand virtual makespan and wall clock,
// and verifies the tuned result hash is bit-identical to the hand run's.
//
// Gates (exit 1 on violation):
//   * tuned makespan must stay within 1.05x of hand on EVERY cell, and
//   * every tuned result hash must equal the hand hash.
// --tune-check additionally requires at least one cell where the tuned
// plan is strictly faster (the skewed slow-storage presets are where the
// serial fat-chunk plan beats always-double-buffering).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "northup/io/posix_file.hpp"
#include "northup/plan/auto_tuner.hpp"
#include "northup/plan/calibrator.hpp"
#include "northup/plan/machine_profile.hpp"
#include "northup/util/timer.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace np = northup::plan;
namespace nu = northup::util;
namespace nio = northup::io;

namespace {

struct RunOutcome {
  na::RunStats stats;
  double wall_s = 0.0;
};

nt::TopoTree make_tree(const nb::AutotuneMachine& machine, int app) {
  const nt::PresetOptions opts =
      app == 0   ? nb::autotune_gemm_options(machine.kind)
      : app == 1 ? nb::hotspot_outofcore_options(machine.kind)
                 : nb::spmv_outofcore_options(machine.kind);
  return machine.three_level ? nt::dgpu_three_level(machine.kind, opts)
                             : nt::apu_two_level(machine.kind, opts);
}

RunOutcome run_app(nc::Runtime& rt, int app) {
  RunOutcome out;
  nu::Timer wall;
  switch (app) {
    case 0: {
      auto config = nb::fig_gemm();
      config.verify_samples = 0;  // hashes compare the full output instead
      config.hash_result = true;
      out.stats = na::gemm_northup(rt, config);
      break;
    }
    case 1: {
      auto config = nb::fig_hotspot();
      config.hash_result = true;
      out.stats = na::hotspot_northup(rt, config);
      break;
    }
    default: {
      auto config = nb::fig_spmv();
      config.hash_result = true;
      out.stats = na::spmv_northup(rt, config);
      break;
    }
  }
  out.wall_s = wall.seconds();
  return out;
}

std::string hash_str(std::uint64_t h) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  const bool tune_check = flags.get_bool("tune-check");
  const bool breakdown = flags.get_bool("breakdown");
  const std::string only = flags.get("only");  // substring cell filter
  const auto pipeline_threads =
      static_cast<std::size_t>(flags.get_int("pipeline-threads", 2));

  nb::print_header(
      "Ablation: calibrate -> tune -> execute (northup::plan AutoTuner)");
  std::printf("pipeline threads=%zu%s\n\n", pipeline_threads,
              tune_check ? " (--tune-check: requiring a strict win)" : "");

  nio::TempDir scratch("autotune");

  nu::TextTable table;
  table.set_header({"machine", "app", "hand (ms)", "tuned (ms)", "ratio",
                    "hand wall (ms)", "tuned wall (ms)", "hash"});

  bool ok = true;
  bool any_strict_win = false;
  for (const auto& machine : nb::kAutotuneMachines) {
    for (int app = 0; app < 3; ++app) {
      const std::string cell =
          std::string(machine.name) + "/" + nb::kAppNames[app];
      if (!only.empty() && cell.find(only) == std::string::npos) continue;
      // Hand-configured run doubles as the calibration run: the flight
      // recorder is on by default, so its kMove/kCompute evidence is the
      // profile's input.
      nc::RuntimeOptions ropts;
      ropts.pipeline_threads = pipeline_threads;
      // Pace file storage on the wall clock so the flight recorder (and
      // therefore the calibrated profile) measures the *modeled* storage
      // tier, not the host filesystem — otherwise an HDD preset
      // calibrates as NVMe-fast and the mode decision cannot see the
      // real transfer cost.
      ropts.paced_storage = true;
      RunOutcome hand;
      np::MachineProfile profile;
      {
        nc::Runtime rt(make_tree(machine, app), ropts);
        hand = run_app(rt, app);
        np::Calibrator calibrator;
        calibrator.observe_topology(rt.tree());
        calibrator.ingest(rt.event_log()->snapshot());
        profile = calibrator.finish();
      }

      // Round-trip the profile through its JSON serialization — the same
      // path a cross-process calibrate-once/tune-many deployment takes.
      const std::string profile_path = scratch.file(
          std::string(machine.name) + "-" + nb::kAppNames[app] + ".json");
      profile.write_json(profile_path);
      const np::AutoTuner tuner(np::MachineProfile::load(profile_path));

      nc::RuntimeOptions tuned_opts = ropts;
      tuned_opts.auto_tune = &tuner;
      nc::Runtime tuned_rt(make_tree(machine, app), tuned_opts);
      const RunOutcome tuned = run_app(tuned_rt, app);
      nb::dump_observability(tuned_rt, flags,
                             std::string(machine.name) + "-" +
                                 nb::kAppNames[app] + "-tuned");

      if (breakdown) {
        const auto& h = hand.stats.breakdown;
        const auto& t = tuned.stats.breakdown;
        std::printf(
            "%s breakdown (ms): hand io %.2f xfer %.2f cpu %.2f gpu %.2f "
            "| tuned io %.2f xfer %.2f cpu %.2f gpu %.2f\n",
            cell.c_str(), h.io * 1e3, h.transfer * 1e3, h.cpu * 1e3,
            h.gpu * 1e3, t.io * 1e3, t.transfer * 1e3, t.cpu * 1e3,
            t.gpu * 1e3);
      }
      const double ratio = hand.stats.makespan > 0
                               ? tuned.stats.makespan / hand.stats.makespan
                               : 1.0;
      const bool hash_ok =
          tuned.stats.result_hash == hand.stats.result_hash;
      if (ratio < 0.999) any_strict_win = true;
      if (ratio > 1.05) {
        std::printf("FAIL %s/%s: tuned makespan %.3f ms vs hand %.3f ms "
                    "(ratio %.3f > 1.05)\n",
                    machine.name, nb::kAppNames[app],
                    tuned.stats.makespan * 1e3, hand.stats.makespan * 1e3,
                    ratio);
        ok = false;
      }
      if (!hash_ok) {
        std::printf("FAIL %s/%s: tuned hash %s != hand hash %s\n",
                    machine.name, nb::kAppNames[app],
                    hash_str(tuned.stats.result_hash).c_str(),
                    hash_str(hand.stats.result_hash).c_str());
        ok = false;
      }
      table.add_row({machine.name, nb::kAppNames[app],
                     nu::TextTable::num(hand.stats.makespan * 1e3, 2),
                     nu::TextTable::num(tuned.stats.makespan * 1e3, 2),
                     nu::TextTable::num(ratio, 3),
                     nu::TextTable::num(hand.wall_s * 1e3, 1),
                     nu::TextTable::num(tuned.wall_s * 1e3, 1),
                     hash_ok ? "match" : "MISMATCH"});
    }
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: tuned within 1.05x of hand everywhere, identical "
      "hashes, and strictly faster on the skewed (slow-storage) "
      "presets where serial fat chunks beat double-buffering\n");

  if (tune_check && !any_strict_win) {
    std::printf("FAIL --tune-check: no cell with a strict tuned win\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
