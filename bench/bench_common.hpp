// Shared configuration for the figure-reproduction harnesses.
//
// Inputs are scaled down from the paper's 16k/32k matrices by a factor
// documented in DESIGN.md §2: the level-1 block dimension here is 256-512
// vs the paper's 4096-8192, so processor FLOP/s and storage access
// latencies are scaled by the same block ratio (kModelScale) to preserve
// every compute-to-I/O and seek-to-transfer ratio. Bandwidths are the
// paper's real device numbers, unscaled.
#pragma once

#include <cstdio>
#include <string>

#include "northup/algos/csr_adaptive.hpp"
#include "northup/algos/gemm.hpp"
#include "northup/algos/hotspot.hpp"
#include "northup/core/observability.hpp"
#include "northup/sim/models.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/flags.hpp"
#include "northup/util/table.hpp"

namespace northup::bench {

/// Every harness accepts --trace-out=<file> / --metrics-out=<file>; multi-run
/// harnesses tag each dump (see core::dump_observability).
using core::dump_observability;

/// block_dim_ours / block_dim_paper (256 / 4096).
inline constexpr double kModelScale = 1.0 / 16.0;

/// SSD at the paper's (read, write) MB/s with scaled access latency.
inline sim::BandwidthModel scaled_ssd(double read_mb = 1400.0,
                                      double write_mb = 600.0) {
  sim::BandwidthModel m = sim::ModelPresets::ssd(read_mb, write_mb);
  m.access_latency_s *= kModelScale;
  return m;
}

/// SATA disk with scaled seek latency.
inline sim::BandwidthModel scaled_hdd() {
  sim::BandwidthModel m = sim::ModelPresets::hdd();
  m.access_latency_s *= kModelScale;
  return m;
}

/// Storage model by kind for the figure runs.
inline sim::BandwidthModel storage_for(mem::StorageKind kind) {
  return mem::is_file_backed(kind) && kind == mem::StorageKind::Hdd
             ? scaled_hdd()
             : scaled_ssd();
}

/// Out-of-core topology options per application. The staging capacities
/// keep the paper's decomposition shapes: GEMM blocks at 1/4 of the input
/// dim, HotSpot blocks at 1/4 (paper: 4k of 16k, 8k of 32k).
inline topo::PresetOptions gemm_outofcore_options(mem::StorageKind kind) {
  topo::PresetOptions o;
  o.root_capacity = 256ULL << 20;
  o.staging_capacity = 2ULL << 20;   // level-1 block 256 at n=1024
  o.device_capacity = 1ULL << 20;
  o.storage_model = storage_for(kind);
  o.proc_flops_scale = kModelScale;
  return o;
}

inline topo::PresetOptions hotspot_outofcore_options(mem::StorageKind kind) {
  topo::PresetOptions o;
  o.root_capacity = 256ULL << 20;
  o.staging_capacity = 4ULL << 20;   // block 512 at n=2048
  o.device_capacity = 4ULL << 20;
  o.storage_model = storage_for(kind);
  o.proc_flops_scale = kModelScale;
  return o;
}

inline topo::PresetOptions spmv_outofcore_options(mem::StorageKind kind) {
  topo::PresetOptions o;
  o.root_capacity = 512ULL << 20;
  o.staging_capacity = 6ULL << 20;   // x stays resident + ~4 MiB shards
  o.device_capacity = 6ULL << 20;
  o.storage_model = storage_for(kind);
  o.proc_flops_scale = kModelScale;
  return o;
}

/// In-memory variant: same processors/storage models, DRAM big enough for
/// the whole working set (the paper's 16 GB configuration).
inline topo::PresetOptions inmemory_options(topo::PresetOptions o) {
  o.staging_capacity = 256ULL << 20;
  o.device_capacity = 64ULL << 20;
  return o;
}

/// A preset with its staging level resized — shared helper for the
/// experiment variants below and for size-derived capacities (e.g. the
/// layout ablation's "room for the transposed image").
inline topo::PresetOptions with_staging(topo::PresetOptions o,
                                        std::uint64_t bytes) {
  o.staging_capacity = bytes;
  return o;
}

/// ablation_cache's constrained GEMM cell: 1 MiB staging halves the
/// level-1 block, forcing nonzero evictions.
inline topo::PresetOptions gemm_constrained_options(mem::StorageKind kind) {
  return with_staging(gemm_outofcore_options(kind), 1ULL << 20);
}

/// ablation_cache's HotSpot cell: staging retains the cross-sweep
/// working set so unchanged power blocks hit on re-descent.
inline topo::PresetOptions hotspot_resident_options(mem::StorageKind kind) {
  topo::PresetOptions o = with_staging(hotspot_outofcore_options(kind),
                                       40ULL << 20);
  o.device_capacity = 8ULL << 20;
  return o;
}

/// Roomy default-topology staging for microbenchmarks that measure the
/// substrate (move paths, leaf kernels) rather than planner decisions.
inline topo::PresetOptions substrate_options() {
  return with_staging(topo::PresetOptions{}, 64ULL << 20);
}

/// The job service's machine: root big enough for every tenant's data,
/// staging tight enough that a high offered load queues on admission
/// (the SpMV jobs reserve ~1 MiB of staging each).
inline topo::PresetOptions service_machine_options() {
  topo::PresetOptions o;
  o.root_capacity = 512ULL << 20;
  o.staging_capacity = 4ULL << 20;
  return o;
}

/// Service job-mix workloads (svc_throughput): small enough that many
/// jobs interleave, defined once beside the figure-scale configs.
inline algos::GemmConfig svc_gemm() {
  algos::GemmConfig c;
  c.n = 64;
  c.verify_samples = 0;  // measured loop, not a correctness test
  return c;
}

inline algos::HotspotConfig svc_hotspot() {
  algos::HotspotConfig c;
  c.n = 64;
  c.iterations = 1;
  c.verify = false;
  return c;
}

inline algos::SpmvConfig svc_spmv() {
  algos::SpmvConfig c;
  c.rows = 20000;
  c.avg_nnz = 8;
  c.verify = false;
  return c;
}

/// Figure-scale workloads (paper: 16k dense, 16M-row sparse; scaled per
/// DESIGN.md §2 — shapes depend on ratios, which are preserved).
inline algos::GemmConfig fig_gemm() {
  algos::GemmConfig c;
  c.n = 1024;
  c.verify_samples = 32;
  return c;
}

inline algos::HotspotConfig fig_hotspot() {
  algos::HotspotConfig c;
  c.n = 2048;
  c.iterations = 1;
  c.verify = false;  // verified in the test suite; benches skip the O(n^2) check
  return c;
}

inline algos::SpmvConfig fig_spmv() {
  algos::SpmvConfig c;
  c.rows = 1u << 18;  // 262,144 rows (paper: 16M; same staging ratio)
  c.avg_nnz = 16;
  c.pattern = algos::SpmvConfig::Pattern::Uniform;
  c.verify = false;
  return c;
}

/// The three applications in the paper's Fig 6/7/8 order.
inline const char* kAppNames[3] = {"dense-mm", "hotspot2d", "csr-adaptive"};

/// Load-pattern and overload-control literals for the svc_overload
/// harness (ISSUE 9), hoisted here so the CI smoke leg, the check gates,
/// and local runs agree on one configuration.
struct OverloadPreset {
  /// Open-loop offered-load multipliers, × the measured saturation rate.
  double multipliers[4] = {0.5, 1.0, 2.0, 4.0};
  double phase_seconds = 3.0;   ///< open-loop duration per multiplier
  double job_deadline_s = 0.5;  ///< per-job deadline during load phases
  int calibration_jobs = 30;    ///< closed-loop jobs sizing the saturation rate
  std::size_t workers = 4;

  // Overload-control knobs the phases run under.
  double target_queue_delay_s = 0.1;  ///< CoDel target sojourn
  double shed_interval_s = 0.02;      ///< initial shed spacing
  /// Per-tenant sustained rate as a fraction of the measured saturation
  /// byte rate: generous below 1x offered load, binding at 4x.
  double tenant_rate_fraction = 0.6;
  /// Burst: this many seconds of a tenant's sustained rate.
  double burst_seconds = 1.0;

  // --overload-check gates (graceful degradation, not collapse).
  double goodput_floor = 0.8;  ///< goodput@4x >= floor × best phase goodput
  double p99_bound_s = 2.5;    ///< p99 end-to-end at 4x offered load
  /// Mean admission-time rejection latency for infeasible deadlines —
  /// the "rejected in microseconds" claim, with CI-noise headroom.
  double infeasible_reject_bound_s = 2e-3;

  std::uint64_t seed = 42;  ///< Poisson arrival stream seed
};

inline OverloadPreset overload_default_preset() { return {}; }

/// CI smoke variant: shorter phases, fewer workers, same gates.
inline OverloadPreset overload_quick_preset() {
  OverloadPreset p;
  p.phase_seconds = 1.0;
  p.calibration_jobs = 12;
  p.workers = 2;
  return p;
}

/// GEMM preset for the autotune ablation: the stock out-of-core options
/// with the GPU level pinned to 512 KiB so *both* candidate level-1
/// blockings (serial 256, double-buffered 128) decompose to the same
/// 128-element leaf block — the condition under which the tuner is
/// allowed to pick the fat serial block with a bit-identical result.
inline topo::PresetOptions autotune_gemm_options(mem::StorageKind kind) {
  topo::PresetOptions o = gemm_outofcore_options(kind);
  o.device_capacity = 512ULL << 10;
  return o;
}

/// The machine presets the autotune ablation calibrates and tunes
/// across: the two dGPU storage tiers plus the APU, i.e. the same
/// machines the figure harnesses use.
struct AutotuneMachine {
  const char* name;
  bool three_level;  ///< dgpu_three_level vs apu_two_level
  mem::StorageKind kind;
};

inline constexpr AutotuneMachine kAutotuneMachines[] = {
    {"dgpu-ssd", true, mem::StorageKind::Ssd},
    {"dgpu-hdd", true, mem::StorageKind::Hdd},  // the skewed slow-storage tier
    {"apu-ssd", false, mem::StorageKind::Ssd},
};

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace northup::bench
