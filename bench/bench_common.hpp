// Shared configuration for the figure-reproduction harnesses.
//
// Inputs are scaled down from the paper's 16k/32k matrices by a factor
// documented in DESIGN.md §2: the level-1 block dimension here is 256-512
// vs the paper's 4096-8192, so processor FLOP/s and storage access
// latencies are scaled by the same block ratio (kModelScale) to preserve
// every compute-to-I/O and seek-to-transfer ratio. Bandwidths are the
// paper's real device numbers, unscaled.
#pragma once

#include <cstdio>
#include <string>

#include "northup/algos/csr_adaptive.hpp"
#include "northup/algos/gemm.hpp"
#include "northup/algos/hotspot.hpp"
#include "northup/core/observability.hpp"
#include "northup/sim/models.hpp"
#include "northup/topo/presets.hpp"
#include "northup/util/flags.hpp"
#include "northup/util/table.hpp"

namespace northup::bench {

/// Every harness accepts --trace-out=<file> / --metrics-out=<file>; multi-run
/// harnesses tag each dump (see core::dump_observability).
using core::dump_observability;

/// block_dim_ours / block_dim_paper (256 / 4096).
inline constexpr double kModelScale = 1.0 / 16.0;

/// SSD at the paper's (read, write) MB/s with scaled access latency.
inline sim::BandwidthModel scaled_ssd(double read_mb = 1400.0,
                                      double write_mb = 600.0) {
  sim::BandwidthModel m = sim::ModelPresets::ssd(read_mb, write_mb);
  m.access_latency_s *= kModelScale;
  return m;
}

/// SATA disk with scaled seek latency.
inline sim::BandwidthModel scaled_hdd() {
  sim::BandwidthModel m = sim::ModelPresets::hdd();
  m.access_latency_s *= kModelScale;
  return m;
}

/// Storage model by kind for the figure runs.
inline sim::BandwidthModel storage_for(mem::StorageKind kind) {
  return mem::is_file_backed(kind) && kind == mem::StorageKind::Hdd
             ? scaled_hdd()
             : scaled_ssd();
}

/// Out-of-core topology options per application. The staging capacities
/// keep the paper's decomposition shapes: GEMM blocks at 1/4 of the input
/// dim, HotSpot blocks at 1/4 (paper: 4k of 16k, 8k of 32k).
inline topo::PresetOptions gemm_outofcore_options(mem::StorageKind kind) {
  topo::PresetOptions o;
  o.root_capacity = 256ULL << 20;
  o.staging_capacity = 2ULL << 20;   // level-1 block 256 at n=1024
  o.device_capacity = 1ULL << 20;
  o.storage_model = storage_for(kind);
  o.proc_flops_scale = kModelScale;
  return o;
}

inline topo::PresetOptions hotspot_outofcore_options(mem::StorageKind kind) {
  topo::PresetOptions o;
  o.root_capacity = 256ULL << 20;
  o.staging_capacity = 4ULL << 20;   // block 512 at n=2048
  o.device_capacity = 4ULL << 20;
  o.storage_model = storage_for(kind);
  o.proc_flops_scale = kModelScale;
  return o;
}

inline topo::PresetOptions spmv_outofcore_options(mem::StorageKind kind) {
  topo::PresetOptions o;
  o.root_capacity = 512ULL << 20;
  o.staging_capacity = 6ULL << 20;   // x stays resident + ~4 MiB shards
  o.device_capacity = 6ULL << 20;
  o.storage_model = storage_for(kind);
  o.proc_flops_scale = kModelScale;
  return o;
}

/// In-memory variant: same processors/storage models, DRAM big enough for
/// the whole working set (the paper's 16 GB configuration).
inline topo::PresetOptions inmemory_options(topo::PresetOptions o) {
  o.staging_capacity = 256ULL << 20;
  o.device_capacity = 64ULL << 20;
  return o;
}

/// Figure-scale workloads (paper: 16k dense, 16M-row sparse; scaled per
/// DESIGN.md §2 — shapes depend on ratios, which are preserved).
inline algos::GemmConfig fig_gemm() {
  algos::GemmConfig c;
  c.n = 1024;
  c.verify_samples = 32;
  return c;
}

inline algos::HotspotConfig fig_hotspot() {
  algos::HotspotConfig c;
  c.n = 2048;
  c.iterations = 1;
  c.verify = false;  // verified in the test suite; benches skip the O(n^2) check
  return c;
}

inline algos::SpmvConfig fig_spmv() {
  algos::SpmvConfig c;
  c.rows = 1u << 18;  // 262,144 rows (paper: 16M; same staging ratio)
  c.avg_nnz = 16;
  c.pattern = algos::SpmvConfig::Pattern::Uniform;
  c.verify = false;
  return c;
}

/// The three applications in the paper's Fig 6/7/8 order.
inline const char* kAppNames[3] = {"dense-mm", "hotspot2d", "csr-adaptive"};

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace northup::bench
