// Figure 9: projected I/O and overall performance with faster storage,
// using the paper's first-order emulator (§V-D): record the application's
// I/O trace on the base SSD (1400/600 MB/s), then re-cost it for faster
// (read/write) bandwidth pairs up to 3500/2100, holding all non-I/O
// components constant. Numbers are normalized to the base SSD; the Δ
// line is the in-memory version — the upper bound Northup can approach.
//
// Paper shapes: memory-intensive workloads gain up to 65% on I/O and 30%
// overall; the in-memory gaps at the fastest point are ~5% / 15% / 30%
// for dense-mm / hotspot / csr-adaptive.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "northup/memsim/projection.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

namespace {

struct AppProjection {
  const char* name;
  std::vector<nm::ProjectionPoint> points;
  double inmem = 0.0;  ///< the Δ reference (in-memory makespan)
};

template <typename RunNorthup, typename RunInMem, typename MakeOptions>
AppProjection project_app(const nu::Flags& flags, const char* name,
                          RunNorthup run_northup, RunInMem run_inmem,
                          MakeOptions make_options) {
  AppProjection result;
  result.name = name;

  // Base out-of-core run on the slowest SSD, tracing every file access.
  nc::RuntimeOptions ropts;
  ropts.trace_io = true;
  nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd,
                                   make_options(nm::StorageKind::Ssd)),
                 ropts);
  const auto base = run_northup(rt);
  nb::dump_observability(rt, flags, name);
  const auto& trace = rt.dm().storage(rt.tree().root()).trace();

  const auto sweep = nm::fig9_storage_sweep();
  const auto labels = nm::fig9_storage_labels();
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    auto model = sweep[i];
    model.access_latency_s *= nb::kModelScale;  // same scaling as the run
    result.points.push_back(nm::project_storage(
        trace, model, base.breakdown.io, base.makespan, labels[i]));
  }

  nc::Runtime imrt(nt::apu_two_level(
      nm::StorageKind::Ssd,
      nb::inmemory_options(make_options(nm::StorageKind::Ssd))));
  result.inmem = run_inmem(imrt).makespan;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header(
      "Fig 9: projected speedup with faster storage (normalized to "
      "1400/600 SSD)");

  std::vector<AppProjection> apps;
  apps.push_back(project_app(
      flags, nb::kAppNames[0],
      [](nc::Runtime& rt) { return na::gemm_northup(rt, nb::fig_gemm()); },
      [](nc::Runtime& rt) { return na::gemm_inmemory(rt, nb::fig_gemm()); },
      nb::gemm_outofcore_options));
  apps.push_back(project_app(
      flags, nb::kAppNames[1],
      [](nc::Runtime& rt) {
        return na::hotspot_northup(rt, nb::fig_hotspot());
      },
      [](nc::Runtime& rt) {
        return na::hotspot_inmemory(rt, nb::fig_hotspot());
      },
      nb::hotspot_outofcore_options));
  apps.push_back(project_app(
      flags, nb::kAppNames[2],
      [](nc::Runtime& rt) { return na::spmv_northup(rt, nb::fig_spmv()); },
      [](nc::Runtime& rt) { return na::spmv_inmemory(rt, nb::fig_spmv()); },
      nb::spmv_outofcore_options));

  nu::TextTable table;
  table.set_header({"app", "r/w MB/s", "io time (ms)", "io norm",
                    "overall (ms)", "overall norm"});
  for (const auto& app : apps) {
    const double base_io = app.points.front().io_time;
    const double base_overall = app.points.front().overall_time;
    for (const auto& p : app.points) {
      table.add_row({app.name, p.label, nu::TextTable::num(p.io_time * 1e3, 1),
                     nu::TextTable::num(p.io_time / base_io, 3),
                     nu::TextTable::num(p.overall_time * 1e3, 1),
                     nu::TextTable::num(p.overall_time / base_overall, 3)});
    }
    table.add_row({app.name, "in-memory (d)", "-", "-",
                   nu::TextTable::num(app.inmem * 1e3, 1),
                   nu::TextTable::num(app.inmem / base_overall, 3)});
  }
  std::printf("%s", table.render().c_str());

  std::printf("\nI/O gain and overall gain at the fastest point:\n");
  for (const auto& app : apps) {
    const auto& fast = app.points.back();
    const auto& base = app.points.front();
    std::printf(
        "  %-14s io -%.0f%%  overall -%.0f%%  gap to in-memory +%.0f%%\n",
        app.name, (1.0 - fast.io_time / base.io_time) * 100.0,
        (1.0 - fast.overall_time / base.overall_time) * 100.0,
        (fast.overall_time / app.inmem - 1.0) * 100.0);
  }
  std::printf(
      "paper reference: up to 65%% I/O and 30%% overall gain; in-memory "
      "gaps ~5%%/15%%/30%%\n");
  return 0;
}
