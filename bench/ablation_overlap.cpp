// Ablation for §III-C's multi-stage queued transfers: how much of the
// component time does the task-graph overlap actually hide? We compare
// the scheduled makespan against the fully serialized sum of component
// times (the no-overlap upper bound).
#include <cstdio>

#include "bench_common.hpp"
#include "northup/core/schedule_report.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

namespace {

std::string g_reports;

void report(nu::TextTable& table, const char* app,
            const na::RunStats& stats) {
  const double serial = stats.breakdown.component_total();
  const double hidden = serial > 0.0 ? (1.0 - stats.makespan / serial) : 0.0;
  table.add_row({app, nu::TextTable::num(serial * 1e3, 1),
                 nu::TextTable::num(stats.makespan * 1e3, 1),
                 nu::TextTable::num(hidden * 100.0, 1) + "%"});
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header(
      "Ablation: copy/compute overlap from the recorded task graph "
      "(§III-C)");

  nu::TextTable table;
  table.set_header(
      {"app", "serialized (ms)", "scheduled makespan (ms)", "hidden"});
  {
    nc::Runtime rt(nt::dgpu_three_level(
        nm::StorageKind::Ssd,
        nb::gemm_outofcore_options(nm::StorageKind::Ssd)));
    report(table, nb::kAppNames[0], na::gemm_northup(rt, nb::fig_gemm()));
    nb::dump_observability(rt, flags, nb::kAppNames[0]);
  }
  {
    nc::Runtime rt(nt::dgpu_three_level(
        nm::StorageKind::Ssd,
        nb::hotspot_outofcore_options(nm::StorageKind::Ssd)));
    report(table, nb::kAppNames[1],
           na::hotspot_northup(rt, nb::fig_hotspot()));
    nb::dump_observability(rt, flags, nb::kAppNames[1]);
  }
  {
    nc::Runtime rt(nt::dgpu_three_level(
        nm::StorageKind::Ssd,
        nb::spmv_outofcore_options(nm::StorageKind::Ssd)));
    report(table, nb::kAppNames[2], na::spmv_northup(rt, nb::fig_spmv()));
    g_reports += "\n-- csr-adaptive schedule analysis --\n" +
                 nc::ScheduleReport::from(*rt.event_sim()).to_string();
    nb::dump_observability(rt, flags, nb::kAppNames[2]);
  }
  std::printf("%s", table.render().c_str());
  std::printf("%s", g_reports.c_str());
  std::printf("\nexpected: a visible fraction of transfer/IO time hides "
              "under compute thanks to per-resource pipelining\n");
  return 0;
}
