// Ablation for §IV-A's row-shard reuse optimization: "the row shard m can
// stay in the l+1 level and the program just iteratively loads column
// shards". With reuse off, every (i, j, k) block product re-reads its A
// block from storage.
#include <cstdio>

#include "bench_common.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header("Ablation: GEMM row-shard reuse (§IV-A)");

  nu::TextTable table;
  table.set_header({"storage", "reuse", "io time (ms)", "bytes moved (MiB)",
                    "makespan (ms)"});
  for (auto kind : {nm::StorageKind::Ssd, nm::StorageKind::Hdd}) {
    const char* sname = kind == nm::StorageKind::Ssd ? "ssd" : "disk";
    for (bool reuse : {true, false}) {
      nc::Runtime rt(
          nt::apu_two_level(kind, nb::gemm_outofcore_options(kind)));
      auto cfg = nb::fig_gemm();
      cfg.shard_reuse = reuse;
      const auto stats = na::gemm_northup(rt, cfg);
      table.add_row(
          {sname, reuse ? "on" : "off",
           nu::TextTable::num(stats.breakdown.io * 1e3, 1),
           nu::TextTable::num(
               static_cast<double>(stats.bytes_moved) / (1 << 20), 1),
           nu::TextTable::num(stats.makespan * 1e3, 1)});
      nb::dump_observability(
          rt, flags,
          std::string(sname) + (reuse ? "-reuse-on" : "-reuse-off"));
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf("\nexpected: reuse cuts A-block re-reads, shrinking I/O time "
              "and total bytes moved\n");
  return 0;
}
