// Figure 11: HotSpot-2D CPU+GPU load balancing with work stealing on the
// shared-memory APU leaf (Fig 10's queue organization), normalized to
// GPU-only Northup execution.
//
// Setup per the paper (§V-E): the input matrix (dim m) lives on the SSD;
// chunks of dim n are staged into main memory; within a chunk, each
// work-queue element is one row of 16 x n blocks. GPU workgroups own q
// queues (q in {8, 16, 32}); 4 CPU threads own one queue each; a drained
// worker steals from the head of the longest remaining queue.
//
// Worker speeds come from the device models: the GPU's aggregate
// throughput saturates with queue count (multiple workgroups per SIMD
// engine are needed to hide latency — why 32 queues win), and the CPU
// contributes ~1/4 of the GPU's peak (the APU's CPU:GPU stencil ratio).
//
// Paper shapes: up to 24% improvement over GPU-only; 32 queues best.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "northup/sched/steal_sim.hpp"

namespace nb = northup::bench;
namespace ns = northup::sched;
namespace nu = northup::util;

namespace {

struct Config {
  std::uint64_t m;  ///< matrix dim in SSD
  std::uint64_t n;  ///< chunk dim staged in DRAM
};

/// Aggregate GPU throughput (work units/s) as a function of queue count:
/// saturating occupancy S * q / (q + k), k = SIMD engine count.
double gpu_total_speed(std::size_t queues) {
  constexpr double kPeak = 1.0;       // normalized units
  constexpr double kSimdEngines = 8;  // paper's APU GPU
  return kPeak * static_cast<double>(queues) /
         (static_cast<double>(queues) + kSimdEngines);
}

constexpr double kCpuTotalSpeed = 0.25;  // 4 threads, ~1/4 of GPU peak
constexpr std::size_t kCpuThreads = 4;

/// Builds the steal simulation for one (m, n, q) point and returns the
/// makespans with and without the CPU helping.
struct PointResult {
  double gpu_only = 0.0;
  double combined = 0.0;
  std::uint64_t steals = 0;
};

PointResult run_point(const Config& cfg, std::size_t gpu_queues) {
  const std::uint64_t chunks = (cfg.m / cfg.n) * (cfg.m / cfg.n);
  const std::uint64_t rows_per_chunk = cfg.n / 16;  // 16 x n block rows
  const double row_cost = static_cast<double>(cfg.n) * 16.0;  // cells

  const double wg_speed = gpu_total_speed(gpu_queues) /
                          static_cast<double>(gpu_queues);
  const double cpu_speed = kCpuTotalSpeed / kCpuThreads;

  auto build = [&](bool with_cpu) {
    ns::StealSim sim;
    std::vector<std::size_t> workers;
    for (std::size_t q = 0; q < gpu_queues; ++q) {
      workers.push_back(
          sim.add_worker({"gpu-q" + std::to_string(q), wg_speed, true}));
    }
    if (with_cpu) {
      for (std::size_t t = 0; t < kCpuThreads; ++t) {
        workers.push_back(
            sim.add_worker({"cpu-t" + std::to_string(t), cpu_speed, true}));
      }
    }
    // Each chunk's block rows are dealt round-robin across all queues
    // (Fig 10's task assignment).
    std::size_t next = 0;
    for (std::uint64_t c = 0; c < chunks; ++c) {
      for (std::uint64_t r = 0; r < rows_per_chunk; ++r) {
        sim.add_task(workers[next % workers.size()], row_cost);
        ++next;
      }
    }
    return sim;
  };

  PointResult result;
  result.gpu_only = build(false).run(true).makespan;
  const auto combined = build(true).run(true);
  result.combined = combined.makespan;
  result.steals = combined.steals;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  // Accepts the shared --trace-out/--metrics-out pair for harness
  // uniformity; the steal model runs outside a Runtime, so there is no
  // task graph to dump.
  nu::Flags flags(argc, argv);
  (void)flags;
  nb::print_header(
      "Fig 11: HotSpot CPU+GPU work stealing vs GPU-only (APU + main "
      "memory + SSD)");

  // Scaled (matrix, chunk) configs; the paper sweeps three such points.
  const std::vector<Config> configs = {{2048, 512}, {2048, 1024},
                                       {4096, 1024}};
  const std::vector<std::size_t> queue_counts = {8, 16, 32};

  // The paper normalizes every point to GPU-only Northup execution; the
  // reference is the best GPU-only configuration (32 queues) for that
  // input, which is what makes "32 queues achieves the best performance"
  // visible: fewer queues underfill the SIMD engines and can even lose
  // to the baseline.
  nu::TextTable table;
  table.set_header({"(m, n)", "gpu queues", "cpu+gpu vs gpu-only",
                    "improvement", "steals"});
  for (const auto& cfg : configs) {
    const double baseline = run_point(cfg, 32).gpu_only;
    for (std::size_t q : queue_counts) {
      const auto r = run_point(cfg, q);
      char label[32];
      std::snprintf(label, sizeof(label), "(%llu, %llu)",
                    static_cast<unsigned long long>(cfg.m),
                    static_cast<unsigned long long>(cfg.n));
      table.add_row({label, std::to_string(q),
                     nu::TextTable::num(baseline / r.combined, 3),
                     nu::TextTable::num(
                         (baseline / r.combined - 1.0) * 100.0, 1) + "%",
                     std::to_string(r.steals)});
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper reference: up to 24%% improvement over GPU-only; 32 queues "
      "perform best\n");
  return 0;
}
