// Ablation for the northup::cache subsystem: the cross-call ShardCache
// turns repeat downloads of unchanged parent regions (GEMM's A row strip,
// HotSpot's power blocks across sweeps) into zero-transfer hits, and the
// BufferPool sheds LRU entries when a node fills instead of failing the
// allocation. Three settings per app: cache off, cache on, and cache on
// under a constrained staging capacity (nonzero evictions, pool high
// water pinned at or below the node capacity).
#include <cstdio>

#include "bench_common.hpp"
#include "northup/cache/cache_manager.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

namespace {

struct CacheStats {
  std::uint64_t hits = 0, misses = 0, evictions = 0, high_water = 0;
};

CacheStats stats_at_l1(nc::Runtime& rt) {
  CacheStats s;
  const auto l1 = rt.tree().get_children_list(rt.tree().root())[0];
  if (auto* cache = rt.shard_cache_at(l1)) {
    s.hits = cache->hits();
    s.misses = cache->misses();
    s.evictions = cache->evictions();
  }
  if (auto* pool = rt.pool_at(l1)) s.high_water = pool->high_water();
  return s;
}

void add_row(nu::TextTable& table, const char* app, const char* mode,
             const na::RunStats& run, const CacheStats& cs) {
  table.add_row({app, mode, nu::TextTable::num(run.makespan * 1e3, 1),
                 nu::TextTable::num(
                     static_cast<double>(run.bytes_moved) / (1 << 20), 1),
                 std::to_string(cs.hits), std::to_string(cs.misses),
                 std::to_string(cs.evictions),
                 nu::TextTable::num(
                     static_cast<double>(cs.high_water) / (1 << 20), 1)});
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header("Ablation: shard cache + buffer pool (northup::cache)");

  nu::TextTable table;
  table.set_header({"app", "cache", "makespan (ms)", "bytes moved (MiB)",
                    "hits", "misses", "evictions", "pool high water (MiB)"});

  // GEMM: the §IV-A row-strip reuse now rides the runtime cache; off
  // means every (i, j, kk) product re-reads its A block from storage.
  for (const char* mode : {"off", "on", "constrained"}) {
    const auto opts = std::string(mode) == "constrained"
                          ? nb::gemm_constrained_options(nm::StorageKind::Ssd)
                          : nb::gemm_outofcore_options(nm::StorageKind::Ssd);
    nc::RuntimeOptions ropts;
    ropts.enable_shard_cache = std::string(mode) != "off";
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, opts), ropts);
    const auto stats = na::gemm_northup(rt, nb::fig_gemm());
    add_row(table, "gemm", mode, stats, stats_at_l1(rt));
    nb::dump_observability(rt, flags, std::string("gemm-cache-") + mode);
  }

  // HotSpot: across sweeps the power blocks never change, so every
  // re-download after the first sweep hits when the staging level can
  // retain them.
  for (const char* mode : {"off", "on"}) {
    const auto opts = nb::hotspot_resident_options(nm::StorageKind::Ssd);
    nc::RuntimeOptions ropts;
    ropts.enable_shard_cache = std::string(mode) != "off";
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, opts), ropts);
    auto cfg = nb::fig_hotspot();
    cfg.iterations = 3;
    const auto stats = na::hotspot_northup(rt, cfg);
    add_row(table, "hotspot", mode, stats, stats_at_l1(rt));
    nb::dump_observability(rt, flags, std::string("hotspot-cache-") + mode);
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: cache on strictly lowers makespan (repeat downloads "
      "become free hits); the constrained run keeps evicting yet never "
      "exceeds the staging capacity\n");
  return 0;
}
