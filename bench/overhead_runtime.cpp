// §V-B runtime-overhead claim: "the measurement shows the runtime
// overhead is less than 1% of the total execution time."
//
// Three measurements per application:
//   * virtual: the modeled bookkeeping cost (tree lookups + queue ops per
//     spawn, charged with phase "runtime") as a share of component time;
//   * real: wall-clock seconds this process actually spent inside the
//     runtime's spawn/queue machinery, per spawn;
//   * recorder: wall-clock overhead of the always-on obs::EventLog flight
//     recorder — the same app run with the recorder enabled vs disabled.
//     The §V-B claim extends to it: recording must stay < 1% of total
//     execution time (and must drop zero events at the default capacity).
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "northup/algos/plan.hpp"
#include "northup/analyze/analyze.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

namespace {

void report(nu::TextTable& table, const char* app, nc::Runtime& rt,
            const na::RunStats& stats) {
  const double overhead_pct =
      stats.breakdown.runtime_overhead_fraction() * 100.0;
  const double wall_per_spawn_us =
      stats.spawns > 0
          ? rt.bookkeeping_wall_seconds() / static_cast<double>(stats.spawns) *
                1e6
          : 0.0;
  table.add_row({app, std::to_string(stats.spawns),
                 nu::TextTable::num(overhead_pct, 3) + "%",
                 nu::TextTable::num(wall_per_spawn_us, 2) + " us"});
}

/// Best-of-`reps` wall seconds for one app run under the given topology
/// options, with the flight recorder on or off.
double timed_run(const nt::PresetOptions& popts, bool recorder,
                 const std::function<void(nc::Runtime&)>& app,
                 std::uint64_t* dropped, int reps = 3) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    nc::RuntimeOptions ropts;
    ropts.enable_event_log = recorder;
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, popts),
                   std::move(ropts));
    const auto t0 = std::chrono::steady_clock::now();
    app(rt);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || secs < best) best = secs;
    if (recorder && dropped != nullptr) *dropped = rt.event_log()->dropped();
  }
  return best;
}

void report_recorder(nu::TextTable& table, const char* app,
                     const nt::PresetOptions& popts,
                     const std::function<void(nc::Runtime&)>& run_app) {
  const double off = timed_run(popts, false, run_app, nullptr);
  std::uint64_t dropped = 0;
  const double on = timed_run(popts, true, run_app, &dropped);
  const double pct = off > 0.0 ? (on - off) / off * 100.0 : 0.0;
  table.add_row({app, nu::TextTable::num(off * 1e3, 2) + " ms",
                 nu::TextTable::num(on * 1e3, 2) + " ms",
                 nu::TextTable::num(pct, 3) + "%", std::to_string(dropped)});
}

/// Best-of-`reps` measured critical path (wall clock, from the flight
/// recorder) of one plan under `threads` pipeline workers. Storage is
/// paced: reads/writes sleep out their modeled bandwidth cost, so the
/// recorder sees the simulated storage tier and overlap is measurable.
double best_critical_path(const nt::PresetOptions& popts,
                          const na::Plan& plan, std::size_t threads,
                          int reps = 3) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    nc::RuntimeOptions ropts;
    ropts.pipeline_threads = threads;
    ropts.paced_storage = true;
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, popts),
                   std::move(ropts));
    plan.run(rt);
    const double len =
        northup::analyze::measured_critical_path(rt.event_log()->snapshot())
            .length_s;
    if (r == 0 || len < best) best = len;
  }
  return best;
}

/// One row of the pipelining table; returns the pipelined / fork-join
/// critical-path ratio.
double report_pipelining(nu::TextTable& table, const char* app,
                         const nt::PresetOptions& popts,
                         const na::Plan& plan) {
  const double fork_join = best_critical_path(popts, plan, 0);
  const double pipelined = best_critical_path(popts, plan, 3);
  const double ratio = fork_join > 0.0 ? pipelined / fork_join : 1.0;
  table.add_row({app, nu::TextTable::num(fork_join * 1e3, 2) + " ms",
                 nu::TextTable::num(pipelined * 1e3, 2) + " ms",
                 nu::TextTable::num(ratio, 3) + "x"});
  return ratio;
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header("Runtime overhead (§V-B claim: < 1% of execution time)");

  nu::TextTable table;
  table.set_header(
      {"app", "spawns", "modeled overhead", "real bookkeeping/spawn"});
  // One dispatch signature over the three planners (algos::Plan).
  const std::unique_ptr<na::Plan> plans[3] = {
      na::make_plan(nb::fig_gemm()), na::make_plan(nb::fig_hotspot()),
      na::make_plan(nb::fig_spmv())};
  const nt::PresetOptions app_options[3] = {
      nb::gemm_outofcore_options(nm::StorageKind::Ssd),
      nb::hotspot_outofcore_options(nm::StorageKind::Ssd),
      nb::spmv_outofcore_options(nm::StorageKind::Ssd)};
  for (int i = 0; i < 3; ++i) {
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, app_options[i]));
    report(table, nb::kAppNames[i], rt, plans[i]->run(rt));
    nb::dump_observability(rt, flags, nb::kAppNames[i]);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper claim: modeled overhead < 1%% for every app\n");

  nb::print_header("Flight-recorder overhead (obs::EventLog on vs off)");
  nu::TextTable rec;
  rec.set_header({"app", "recorder off", "recorder on", "overhead", "dropped"});
  for (int i = 0; i < 3; ++i) {
    report_recorder(rec, nb::kAppNames[i], app_options[i],
                    [&](nc::Runtime& rt) { plans[i]->run(rt); });
  }
  std::printf("%s", rec.render().c_str());
  std::printf("\nclaim: recording stays < 1%% of wall time, zero drops\n");

  nb::print_header(
      "Pipelined vs fork-join (exec::TaskGraph measured critical path)");
  nu::TextTable pipe;
  pipe.set_header({"app", "fork-join", "pipelined", "ratio"});
  double worst_ratio = 0.0;
  for (int i = 0; i < 2; ++i) {  // GEMM + HotSpot carry the overlap claim
    // Throughput-bound paced storage. The paper's testbed ran inputs an
    // order of magnitude larger, where storage time is a comparable share
    // of compute; the shrunk functional inputs keep that ratio in virtual
    // time (proc_flops_scale), and pacing this model restores it on the
    // wall clock so the overlap win is physically measurable.
    nt::PresetOptions paced = app_options[i];
    paced.storage_model = {80e6, 75e6, 100e-6};
    // Pipelining double-buffers the next window's blocks, so the planners
    // halve their staging budget under pipeline_threads > 0. Doubling the
    // staging tier here makes both modes pick the *same* block size — the
    // row then isolates overlap instead of comparing different chunkings.
    paced.staging_capacity *= 2;
    worst_ratio = std::max(
        worst_ratio,
        report_pipelining(pipe, nb::kAppNames[i], paced, *plans[i]));
  }
  std::printf("%s", pipe.render().c_str());
  std::printf(
      "\nclaim: pipelining shrinks the measured critical path toward "
      "max(compute, transfer)\n");
  if (flags.has("pipeline-check")) {
    // CI smoke gate: the async path must not regress past fork-join.
    if (worst_ratio >= 1.0) {
      std::fprintf(stderr,
                   "FAIL: pipelined critical path regressed past the "
                   "fork-join baseline (worst ratio %.3f >= 1.0)\n",
                   worst_ratio);
      return 1;
    }
    std::printf("pipeline-check OK: worst ratio %.3f < 1.0\n", worst_ratio);
  }
  return 0;
}
