// §V-B runtime-overhead claim: "the measurement shows the runtime
// overhead is less than 1% of the total execution time."
//
// Two measurements per application:
//   * virtual: the modeled bookkeeping cost (tree lookups + queue ops per
//     spawn, charged with phase "runtime") as a share of component time;
//   * real: wall-clock seconds this process actually spent inside the
//     runtime's spawn/queue machinery, per spawn.
#include <cstdio>

#include "bench_common.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

namespace {

void report(nu::TextTable& table, const char* app, nc::Runtime& rt,
            const na::RunStats& stats) {
  const double overhead_pct =
      stats.breakdown.runtime_overhead_fraction() * 100.0;
  const double wall_per_spawn_us =
      stats.spawns > 0
          ? rt.bookkeeping_wall_seconds() / static_cast<double>(stats.spawns) *
                1e6
          : 0.0;
  table.add_row({app, std::to_string(stats.spawns),
                 nu::TextTable::num(overhead_pct, 3) + "%",
                 nu::TextTable::num(wall_per_spawn_us, 2) + " us"});
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header("Runtime overhead (§V-B claim: < 1% of execution time)");

  nu::TextTable table;
  table.set_header(
      {"app", "spawns", "modeled overhead", "real bookkeeping/spawn"});
  {
    nc::Runtime rt(nt::apu_two_level(
        nm::StorageKind::Ssd,
        nb::gemm_outofcore_options(nm::StorageKind::Ssd)));
    report(table, nb::kAppNames[0], rt, na::gemm_northup(rt, nb::fig_gemm()));
    nb::dump_observability(rt, flags, nb::kAppNames[0]);
  }
  {
    nc::Runtime rt(nt::apu_two_level(
        nm::StorageKind::Ssd,
        nb::hotspot_outofcore_options(nm::StorageKind::Ssd)));
    report(table, nb::kAppNames[1], rt,
           na::hotspot_northup(rt, nb::fig_hotspot()));
    nb::dump_observability(rt, flags, nb::kAppNames[1]);
  }
  {
    nc::Runtime rt(nt::apu_two_level(
        nm::StorageKind::Ssd,
        nb::spmv_outofcore_options(nm::StorageKind::Ssd)));
    report(table, nb::kAppNames[2], rt, na::spmv_northup(rt, nb::fig_spmv()));
    nb::dump_observability(rt, flags, nb::kAppNames[2]);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper claim: modeled overhead < 1%% for every app\n");
  return 0;
}
