// §V-B runtime-overhead claim: "the measurement shows the runtime
// overhead is less than 1% of the total execution time."
//
// Three measurements per application:
//   * virtual: the modeled bookkeeping cost (tree lookups + queue ops per
//     spawn, charged with phase "runtime") as a share of component time;
//   * real: wall-clock seconds this process actually spent inside the
//     runtime's spawn/queue machinery, per spawn;
//   * recorder: wall-clock overhead of the always-on obs::EventLog flight
//     recorder — the same app run with the recorder enabled vs disabled.
//     The §V-B claim extends to it: recording must stay < 1% of total
//     execution time (and must drop zero events at the default capacity).
#include <chrono>
#include <cstdio>
#include <functional>

#include "bench_common.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

namespace {

void report(nu::TextTable& table, const char* app, nc::Runtime& rt,
            const na::RunStats& stats) {
  const double overhead_pct =
      stats.breakdown.runtime_overhead_fraction() * 100.0;
  const double wall_per_spawn_us =
      stats.spawns > 0
          ? rt.bookkeeping_wall_seconds() / static_cast<double>(stats.spawns) *
                1e6
          : 0.0;
  table.add_row({app, std::to_string(stats.spawns),
                 nu::TextTable::num(overhead_pct, 3) + "%",
                 nu::TextTable::num(wall_per_spawn_us, 2) + " us"});
}

/// Best-of-`reps` wall seconds for one app run under the given topology
/// options, with the flight recorder on or off.
double timed_run(const nt::PresetOptions& popts, bool recorder,
                 const std::function<void(nc::Runtime&)>& app,
                 std::uint64_t* dropped, int reps = 3) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    nc::RuntimeOptions ropts;
    ropts.enable_event_log = recorder;
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, popts),
                   std::move(ropts));
    const auto t0 = std::chrono::steady_clock::now();
    app(rt);
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    if (r == 0 || secs < best) best = secs;
    if (recorder && dropped != nullptr) *dropped = rt.event_log()->dropped();
  }
  return best;
}

void report_recorder(nu::TextTable& table, const char* app,
                     const nt::PresetOptions& popts,
                     const std::function<void(nc::Runtime&)>& run_app) {
  const double off = timed_run(popts, false, run_app, nullptr);
  std::uint64_t dropped = 0;
  const double on = timed_run(popts, true, run_app, &dropped);
  const double pct = off > 0.0 ? (on - off) / off * 100.0 : 0.0;
  table.add_row({app, nu::TextTable::num(off * 1e3, 2) + " ms",
                 nu::TextTable::num(on * 1e3, 2) + " ms",
                 nu::TextTable::num(pct, 3) + "%", std::to_string(dropped)});
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header("Runtime overhead (§V-B claim: < 1% of execution time)");

  nu::TextTable table;
  table.set_header(
      {"app", "spawns", "modeled overhead", "real bookkeeping/spawn"});
  {
    nc::Runtime rt(nt::apu_two_level(
        nm::StorageKind::Ssd,
        nb::gemm_outofcore_options(nm::StorageKind::Ssd)));
    report(table, nb::kAppNames[0], rt, na::gemm_northup(rt, nb::fig_gemm()));
    nb::dump_observability(rt, flags, nb::kAppNames[0]);
  }
  {
    nc::Runtime rt(nt::apu_two_level(
        nm::StorageKind::Ssd,
        nb::hotspot_outofcore_options(nm::StorageKind::Ssd)));
    report(table, nb::kAppNames[1], rt,
           na::hotspot_northup(rt, nb::fig_hotspot()));
    nb::dump_observability(rt, flags, nb::kAppNames[1]);
  }
  {
    nc::Runtime rt(nt::apu_two_level(
        nm::StorageKind::Ssd,
        nb::spmv_outofcore_options(nm::StorageKind::Ssd)));
    report(table, nb::kAppNames[2], rt, na::spmv_northup(rt, nb::fig_spmv()));
    nb::dump_observability(rt, flags, nb::kAppNames[2]);
  }
  std::printf("%s", table.render().c_str());
  std::printf("\npaper claim: modeled overhead < 1%% for every app\n");

  nb::print_header("Flight-recorder overhead (obs::EventLog on vs off)");
  nu::TextTable rec;
  rec.set_header({"app", "recorder off", "recorder on", "overhead", "dropped"});
  report_recorder(rec, nb::kAppNames[0],
                  nb::gemm_outofcore_options(nm::StorageKind::Ssd),
                  [](nc::Runtime& rt) { na::gemm_northup(rt, nb::fig_gemm()); });
  report_recorder(
      rec, nb::kAppNames[1], nb::hotspot_outofcore_options(nm::StorageKind::Ssd),
      [](nc::Runtime& rt) { na::hotspot_northup(rt, nb::fig_hotspot()); });
  report_recorder(
      rec, nb::kAppNames[2], nb::spmv_outofcore_options(nm::StorageKind::Ssd),
      [](nc::Runtime& rt) { na::spmv_northup(rt, nb::fig_spmv()); });
  std::printf("%s", rec.render().c_str());
  std::printf("\nclaim: recording stays < 1%% of wall time, zero drops\n");
  return 0;
}
