// Ablation for the northup::mmapio storage tier: the same out-of-core
// GEMM and SpMV runs on three file transports —
//
//   legacy  : copying FileStorage (pread/pwrite through a staging buffer)
//   async   : FileStorage + AsyncIoPool (striped / io_uring-batched I/O)
//   mmap    : MmapStorage (MAP_SHARED mappings, zero-copy data plane)
//
// Reported numbers are *functional* wall seconds (unpaced, host-speed
// storage), which is exactly where the transport matters: virtual time is
// identical across transports by construction (Storage::note_access
// charges the same modeled cost), and the harness exits non-zero if any
// transport produces a result hash that differs from the legacy path.
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "bench_common.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

namespace {

struct TransportResult {
  double wall_seconds = 0.0;
  std::uint64_t result_hash = 0;
  std::uint64_t zero_copy_moves = 0;
  bool used_uring = false;
};

const char* kTransports[3] = {"legacy", "async", "mmap"};

nc::RuntimeOptions transport_options(int transport) {
  nc::RuntimeOptions o;
  if (transport == 1) o.io_threads = 2;
  if (transport == 2) o.mmap_storage = true;
  return o;
}

template <typename RunFn>
TransportResult run_transport(nu::Flags& flags, const char* app,
                              const nt::PresetOptions& topo_options,
                              int transport, RunFn&& run) {
  nc::Runtime rt(nt::dgpu_three_level(nm::StorageKind::Ssd, topo_options),
                 transport_options(transport));
  if (rt.io_pool() != nullptr) rt.io_pool()->attach_metrics(rt.metrics());
  const na::RunStats stats = run(rt);
  TransportResult r;
  r.wall_seconds = stats.wall_seconds;
  r.result_hash = stats.result_hash;
  r.zero_copy_moves = rt.metrics().counter("dm.zero_copy_moves").value();
  r.used_uring = rt.io_pool() != nullptr && rt.io_pool()->using_io_uring();
  nb::dump_observability(rt, flags,
                         std::string(app) + "-" + kTransports[transport]);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header(
      "Ablation: mmap zero-copy storage vs copying FileStorage transports "
      "(northup::mmapio)");

  auto gemm_cfg = nb::fig_gemm();
  gemm_cfg.verify_samples = 0;  // hashes gate correctness here
  gemm_cfg.hash_result = true;
  auto spmv_cfg = nb::fig_spmv();
  spmv_cfg.hash_result = true;

  nu::TextTable table;
  table.set_header({"app", "transport", "wall (ms)", "vs legacy",
                    "zero-copy moves", "result hash"});

  bool hashes_match = true;
  struct App {
    const char* name;
    nt::PresetOptions topo;
    std::function<na::RunStats(nc::Runtime&)> run;
  } apps[2] = {
      {"dense-mm", nb::gemm_outofcore_options(nm::StorageKind::Ssd),
       [&](nc::Runtime& rt) { return na::gemm_northup(rt, gemm_cfg); }},
      {"csr-adaptive", nb::spmv_outofcore_options(nm::StorageKind::Ssd),
       [&](nc::Runtime& rt) { return na::spmv_northup(rt, spmv_cfg); }},
  };

  for (const App& app : apps) {
    TransportResult baseline{};
    for (int t = 0; t < 3; ++t) {
      const TransportResult r =
          run_transport(flags, app.name, app.topo, t, app.run);
      if (t == 0) baseline = r;
      if (r.result_hash != baseline.result_hash) hashes_match = false;
      const double speedup =
          r.wall_seconds > 0.0 ? baseline.wall_seconds / r.wall_seconds : 0.0;
      char hash_hex[24];
      std::snprintf(hash_hex, sizeof(hash_hex), "%016llx",
                    static_cast<unsigned long long>(r.result_hash));
      std::string label = kTransports[t];
      if (t == 1 && r.used_uring) label += " (io_uring)";
      table.add_row({app.name, label,
                     nu::TextTable::num(r.wall_seconds * 1e3, 1),
                     nu::TextTable::num(speedup, 2) + "x",
                     std::to_string(r.zero_copy_moves), hash_hex});
    }
  }

  std::printf("%s", table.render().c_str());
  if (!hashes_match) {
    std::printf("\nFAIL: transports disagree on result bytes — the "
                "zero-copy path corrupted data\n");
    return 1;
  }
  std::printf("\nexpected: bit-identical hashes on every transport; the "
              "mmap column at or below legacy wall time (staging copies "
              "eliminated), async at or below legacy on striped-I/O "
              "friendly shapes\n");
  return 0;
}
