// §V-D / §VI experiment: "with emerging memory technologies, the
// extremely wide gap between DRAM and storage (SSD/disk drive) can be
// filled for better performance" — the same out-of-core applications run
// on a ladder of level-0 backing stores, from a SATA disk to an NVM tier
// used as per-node slower memory, converging toward the in-memory bound.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace ns = northup::sim;
namespace nu = northup::util;

namespace {

struct Tier {
  const char* name;
  bool is_nvm_root;             ///< byte-addressable root (no file I/O)
  nm::StorageKind kind;         ///< file kind when not NVM
  ns::BandwidthModel model;
};

template <typename RunNorthup, typename RunInMem, typename MakeOptions>
void run_ladder(const nu::Flags& flags, const char* app,
                RunNorthup run_northup, RunInMem run_inmem,
                MakeOptions make_options, nu::TextTable& table) {
  const std::vector<Tier> tiers = {
      {"sata-disk", false, nm::StorageKind::Hdd, nb::scaled_hdd()},
      {"ssd 1400/600", false, nm::StorageKind::Ssd, nb::scaled_ssd()},
      {"ssd 3500/2100", false, nm::StorageKind::Ssd,
       nb::scaled_ssd(3500, 2100)},
      {"nvm tier", true, nm::StorageKind::Nvm, ns::ModelPresets::nvm()},
  };

  double inmem = 0.0;
  {
    nc::Runtime rt(nt::apu_two_level(
        nm::StorageKind::Ssd,
        nb::inmemory_options(make_options(nm::StorageKind::Ssd))));
    inmem = run_inmem(rt).makespan;
  }

  for (const auto& tier : tiers) {
    auto opts = make_options(tier.kind);
    opts.storage_model = tier.model;
    nc::Runtime rt(tier.is_nvm_root
                       ? nt::nvm_root_two_level(opts)
                       : nt::apu_two_level(tier.kind, opts));
    const auto stats = run_northup(rt);
    table.add_row({app, tier.name,
                   nu::TextTable::num(stats.makespan * 1e3, 1),
                   nu::TextTable::num(stats.makespan / inmem, 2)});
    nb::dump_observability(rt, flags, std::string(app) + "-" + tier.name);
  }
  table.add_row({app, "in-memory bound", nu::TextTable::num(inmem * 1e3, 1),
                 "1.00"});
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header(
      "Deep-hierarchy ladder: filling the DRAM-storage gap (§V-D/§VI)");

  nu::TextTable table;
  table.set_header({"app", "level-0 store", "makespan (ms)",
                    "vs in-memory"});
  run_ladder(
      flags, nb::kAppNames[1],
      [](nc::Runtime& rt) {
        return na::hotspot_northup(rt, nb::fig_hotspot());
      },
      [](nc::Runtime& rt) {
        return na::hotspot_inmemory(rt, nb::fig_hotspot());
      },
      nb::hotspot_outofcore_options, table);
  run_ladder(
      flags, nb::kAppNames[2],
      [](nc::Runtime& rt) { return na::spmv_northup(rt, nb::fig_spmv()); },
      [](nc::Runtime& rt) { return na::spmv_inmemory(rt, nb::fig_spmv()); },
      nb::spmv_outofcore_options, table);
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: each faster tier narrows the gap; the NVM tier makes "
      "out-of-core execution nearly free\n");
  return 0;
}
