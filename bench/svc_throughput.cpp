// Closed-loop load generator for the northup::svc job service.
//
// N client threads each submit a small mixed stream of GEMM / HotSpot /
// SpMV jobs back-to-back (closed loop: next submit waits for the previous
// completion), against one shared machine. Two experiments:
//
//   1. Offered-load sweep (weighted-fair, cache on): client count rises,
//      throughput should rise past the serialized baseline while the
//      admission controller partitions the staging level — the
//      "concurrent jobs beat one-at-a-time" claim, with p50/p95/p99
//      end-to-end latency from the svc.latency.* histograms.
//   2. Policy/cache matrix at the highest load: FIFO vs weighted-fair,
//      shard cache on vs off, same metrics plus queue high water.
//
// --trace-out / --metrics-out dump the last configuration's interleaved
// job Chrome trace and the machine metrics JSON (queue gauges, latency
// histograms) for inspection.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "northup/svc/service.hpp"
#include "northup/util/flags.hpp"
#include "northup/util/table.hpp"
#include "northup/util/timer.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nsv = northup::svc;
namespace nu = northup::util;

namespace {

struct LoadPoint {
  int clients = 1;
  nsv::SchedulingPolicy policy = nsv::SchedulingPolicy::WeightedFair;
  bool cache = true;
};

struct LoadResult {
  double wall_s = 0.0;
  std::uint64_t completed = 0;
  double throughput = 0.0;  ///< completed jobs per wall second
  northup::obs::Histogram::Snapshot e2e;
  northup::obs::Histogram::Snapshot queue_wait;
  double queue_high_water = 0.0;
};

/// The job mix one client cycles through: compute-bound, stencil, sparse.
nsv::JobRequest make_request(int client, int index) {
  nsv::JobRequest request;
  request.tenant = "client-" + std::to_string(client);
  switch ((client + index) % 3) {
    case 0:
      request.config = nb::svc_gemm();
      break;
    case 1:
      request.config = nb::svc_hotspot();
      break;
    default:
      request.config = nb::svc_spmv();
      break;
  }
  return request;
}

LoadResult run_load(const LoadPoint& point, int jobs_per_client,
                    std::size_t workers,
                    std::unique_ptr<nsv::JobService>* keep_service) {
  nsv::ServiceOptions opts;
  opts.machine_levels = 2;  // APU preset: storage -> DRAM leaf
  opts.machine = nb::service_machine_options();
  opts.workers = workers;
  opts.max_queue_depth = 64;
  opts.policy = point.policy;
  opts.enable_shard_cache = point.cache;

  auto service = std::make_unique<nsv::JobService>(opts);

  nu::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(point.clients));
  std::atomic<std::uint64_t> completed{0};
  for (int c = 0; c < point.clients; ++c) {
    threads.emplace_back([&, c] {
      for (int j = 0; j < jobs_per_client; ++j) {
        nsv::JobHandle handle = service->submit(make_request(c, j));
        if (handle.wait().state == nsv::JobState::Done) {
          completed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  service->wait_all();

  LoadResult result;
  result.wall_s = wall.seconds();
  result.completed = completed.load();
  result.throughput =
      result.wall_s > 0 ? static_cast<double>(result.completed) / result.wall_s
                        : 0.0;
  const auto histograms = service->metrics().histogram_values();
  if (histograms.count("svc.latency.e2e")) {
    result.e2e = histograms.at("svc.latency.e2e");
  }
  if (histograms.count("svc.latency.queue_wait")) {
    result.queue_wait = histograms.at("svc.latency.queue_wait");
  }
  result.queue_high_water =
      service->metrics().gauge_values().at("svc.queue.high_water");

  if (keep_service) {
    // Kept alive so the caller can dump its trace/metrics after the run.
    *keep_service = std::move(service);
  }
  return result;
}

std::string ms(double seconds) { return nu::TextTable::num(seconds * 1e3, 2); }

void add_row(nu::TextTable& table, const std::string& label,
             const LoadPoint& point, const LoadResult& r) {
  table.add_row({label, nsv::policy_name(point.policy),
                 point.cache ? "on" : "off", std::to_string(r.completed),
                 nu::TextTable::num(r.throughput, 2), ms(r.e2e.p50),
                 ms(r.e2e.p95), ms(r.e2e.p99), ms(r.queue_wait.p95),
                 nu::TextTable::num(r.queue_high_water, 0)});
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  const bool quick = flags.get_bool("quick");
  const int jobs_per_client =
      static_cast<int>(flags.get_int("jobs", quick ? 3 : 6));
  const auto workers =
      static_cast<std::size_t>(flags.get_int("workers", quick ? 2 : 4));

  nb::print_header("svc_throughput: closed-loop load on the job service");
  std::printf("jobs/client=%d workers=%zu %s\n\n", jobs_per_client, workers,
              quick ? "(quick)" : "");

  nu::TextTable table;
  table.set_header({"clients", "policy", "cache", "done", "jobs/s", "p50 (ms)",
                    "p95 (ms)", "p99 (ms)", "queue p95 (ms)", "queue hwm"});

  // Experiment 1: offered-load sweep under the fair policy.
  std::vector<int> sweep = quick ? std::vector<int>{1, 2}
                                 : std::vector<int>{1, 2, 4, 8};
  double serial_throughput = 0.0;
  double best_throughput = 0.0;
  for (const int clients : sweep) {
    const LoadPoint point{clients, nsv::SchedulingPolicy::WeightedFair, true};
    const LoadResult r = run_load(point, jobs_per_client, workers, nullptr);
    add_row(table, std::to_string(clients), point, r);
    if (clients == 1) serial_throughput = r.throughput;
    best_throughput = std::max(best_throughput, r.throughput);
  }

  // Experiment 2: policy x cache matrix at the highest load.
  const int top = sweep.back();
  std::unique_ptr<nsv::JobService> last_service;
  const std::vector<LoadPoint> matrix = {
      {top, nsv::SchedulingPolicy::Fifo, false},
      {top, nsv::SchedulingPolicy::Fifo, true},
      {top, nsv::SchedulingPolicy::WeightedFair, false},
      {top, nsv::SchedulingPolicy::WeightedFair, true},
  };
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    const bool keep = i + 1 == matrix.size();
    const LoadResult r = run_load(matrix[i], jobs_per_client, workers,
                                  keep ? &last_service : nullptr);
    add_row(table, std::to_string(top) + "*", matrix[i], r);
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("concurrency speedup vs 1 client: %.2fx %s\n",
              serial_throughput > 0 ? best_throughput / serial_throughput : 0.0,
              best_throughput > serial_throughput ? "(concurrent wins)"
                                                  : "(NO WIN — investigate)");

  if (last_service) {
    const std::string trace_out = flags.get("trace-out");
    if (!trace_out.empty()) {
      last_service->write_job_trace(trace_out);
      std::printf("job trace    -> %s\n", trace_out.c_str());
    }
    const std::string metrics_out = flags.get("metrics-out");
    if (!metrics_out.empty()) {
      last_service->write_metrics_json(metrics_out);
      std::printf("metrics json -> %s\n", metrics_out.c_str());
    }
  }
  return 0;
}
