// Ablation for the northup::resil subsystem: what end-to-end checksums
// cost on a clean run, and what chunk-granular retry + checksum
// re-transfer buy back when the deep-storage device misbehaves. Four
// GEMM settings (clean, clean+checksums, transient faults, faults with
// silent corruption + checksums) plus a HotSpot overhead pair; the
// fault rows recover bit-identical results (CRC32 of the output vs the
// fault-free run) with zero whole-job restarts.
#include <cstdio>

#include "bench_common.hpp"
#include "northup/memsim/fault_injection.hpp"
#include "northup/resil/resilience.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

namespace {

/// Wraps the root (deep-storage) node in a FaultInjectingStorage running
/// `plan`; identity when no plan is given.
nc::RuntimeOptions with_chaos(const nm::FaultPlan* plan) {
  nc::RuntimeOptions options;
  if (plan == nullptr) return options;
  const nm::FaultPlan copy = *plan;
  options.storage_decorator =
      [copy](nt::NodeId node, const nt::TopoTree& tree,
             std::unique_ptr<nm::Storage> storage)
      -> std::unique_ptr<nm::Storage> {
    if (node != tree.root()) return storage;
    auto wrapped =
        std::make_unique<nm::FaultInjectingStorage>(std::move(storage));
    wrapped->set_plan(copy);
    return wrapped;
  };
  return options;
}

void add_row(nu::TextTable& table, const char* app, const char* mode,
             const na::RunStats& run, nc::Runtime& rt,
             std::uint64_t reference_hash) {
  const char* identical = reference_hash == 0 ? "-"
                          : run.result_hash == reference_hash ? "yes"
                                                              : "NO";
  table.add_row({app, mode, nu::TextTable::num(run.makespan * 1e3, 1),
                 nu::TextTable::num(run.wall_seconds * 1e3, 1),
                 nu::TextTable::num(
                     static_cast<double>(run.bytes_moved) / (1 << 20), 1),
                 std::to_string(rt.resilience().retries()),
                 std::to_string(rt.resilience().corruption_detected()),
                 identical});
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header("Ablation: chunk-granular fault tolerance (northup::resil)");

  nu::TextTable table;
  table.set_header({"app", "mode", "makespan (ms)", "wall (ms)",
                    "bytes moved (MiB)", "retries", "corruptions",
                    "bit-identical"});

  // Transient-only mix: the "bad but recoverable device".
  nm::FaultPlan transient;
  transient.seed = 0x9e51;
  transient.read_fault_rate = 0.05;
  transient.write_fault_rate = 0.05;
  transient.latency_spike_rate = 0.01;
  transient.latency_spike_s = 1e-4;

  // Silent corruption on top: only end-to-end checksums can see these.
  nm::FaultPlan corrupting = transient;
  corrupting.read_corrupt_rate = 0.005;
  corrupting.write_corrupt_rate = 0.005;

  const auto preset = nb::gemm_outofcore_options(nm::StorageKind::Ssd);
  auto config = nb::fig_gemm();
  config.hash_result = true;

  double clean_makespan = 0.0, clean_wall = 0.0;
  double cksum_makespan = 0.0, cksum_wall = 0.0;
  std::uint64_t reference_hash = 0;
  {
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, preset));
    const auto stats = na::gemm_northup(rt, config);
    clean_makespan = stats.makespan;
    clean_wall = stats.wall_seconds;
    reference_hash = stats.result_hash;
    add_row(table, "gemm", "clean", stats, rt, 0);
    nb::dump_observability(rt, flags, "gemm-resil-clean");
  }
  {
    nc::RuntimeOptions options;
    options.resilience.verify_checksums = true;
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, preset), options);
    const auto stats = na::gemm_northup(rt, config);
    cksum_makespan = stats.makespan;
    cksum_wall = stats.wall_seconds;
    add_row(table, "gemm", "clean+cksum", stats, rt, reference_hash);
    nb::dump_observability(rt, flags, "gemm-resil-cksum");
  }
  {
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, preset),
                   with_chaos(&transient));
    const auto stats = na::gemm_northup(rt, config);
    add_row(table, "gemm", "faults+retry", stats, rt, reference_hash);
    nb::dump_observability(rt, flags, "gemm-resil-faults");
  }
  {
    nc::RuntimeOptions options = with_chaos(&corrupting);
    options.resilience.verify_checksums = true;
    options.resilience.retry.max_attempts = 8;
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, preset), options);
    const auto stats = na::gemm_northup(rt, config);
    add_row(table, "gemm", "corrupt+cksum", stats, rt, reference_hash);
    nb::dump_observability(rt, flags, "gemm-resil-corrupt");
  }

  // HotSpot overhead pair: a second checksum-cost data point on a
  // bandwidth-bound stencil.
  const auto hpreset = nb::hotspot_outofcore_options(nm::StorageKind::Ssd);
  auto hconfig = nb::fig_hotspot();
  double h_clean_makespan = 0.0, h_clean_wall = 0.0;
  double h_cksum_makespan = 0.0, h_cksum_wall = 0.0;
  {
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, hpreset));
    const auto stats = na::hotspot_northup(rt, hconfig);
    h_clean_makespan = stats.makespan;
    h_clean_wall = stats.wall_seconds;
    add_row(table, "hotspot", "clean", stats, rt, 0);
  }
  {
    nc::RuntimeOptions options;
    options.resilience.verify_checksums = true;
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd, hpreset), options);
    const auto stats = na::hotspot_northup(rt, hconfig);
    h_cksum_makespan = stats.makespan;
    h_cksum_wall = stats.wall_seconds;
    add_row(table, "hotspot", "clean+cksum", stats, rt, 0);
  }

  std::printf("%s", table.render().c_str());
  std::printf(
      "\nchecksum overhead: gemm %.1f%% makespan / %.1f%% wall, "
      "hotspot %.1f%% makespan / %.1f%% wall\n",
      (cksum_makespan / clean_makespan - 1.0) * 100.0,
      (cksum_wall / clean_wall - 1.0) * 100.0,
      (h_cksum_makespan / h_clean_makespan - 1.0) * 100.0,
      (h_cksum_wall / h_clean_wall - 1.0) * 100.0);
  std::printf(
      "expected: fault rows stay bit-identical with zero whole-job "
      "restarts; checksums price in one CRC32 pass per verified chunk "
      "transfer\n");
  return 0;
}
