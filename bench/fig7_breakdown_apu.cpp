// Figure 7: execution-time breakdown (CPU, GPU, buffer setup, transfers
// and I/Os) for Northup out-of-core runs on the two-level APU tree (main
// memory + SSD / disk drive).
//
// Paper shapes: dense-mm is GPU-dominated on both storages; on the disk
// drive HotSpot-2D and CSR-Adaptive spend only 22% / 28% on the GPU;
// switching to the SSD raises their GPU share to 59% / 41%; CSR-Adaptive
// shows the largest CPU share (row binning).
#include <cstdio>

#include "bench_common.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

namespace {

void add_row(nu::TextTable& table, const char* app, const char* storage,
             const na::RunStats& stats) {
  const auto shares = stats.breakdown.shares();
  auto pct = [&](const char* key) {
    auto it = shares.find(key);
    return nu::TextTable::num((it == shares.end() ? 0.0 : it->second) * 100.0,
                              1);
  };
  table.add_row({app, storage, pct("cpu"), pct("gpu"), pct("setup"),
                 pct("transfer"), pct("io"), pct("runtime"),
                 nu::TextTable::num(stats.makespan * 1e3, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header(
      "Fig 7: execution breakdown, APU 2-level tree (shares of component "
      "time, %)");

  nu::TextTable table;
  table.set_header({"app", "storage", "cpu%", "gpu%", "setup%", "transfer%",
                    "io%", "runtime%", "makespan(ms)"});

  for (auto kind : {nm::StorageKind::Ssd, nm::StorageKind::Hdd}) {
    const char* sname = kind == nm::StorageKind::Ssd ? "ssd" : "disk";
    {
      nc::Runtime rt(nt::apu_two_level(kind, nb::gemm_outofcore_options(kind)));
      add_row(table, nb::kAppNames[0], sname,
              na::gemm_northup(rt, nb::fig_gemm()));
      nb::dump_observability(rt, flags, std::string(nb::kAppNames[0]) + "-" +
                                            sname);
    }
    {
      nc::Runtime rt(
          nt::apu_two_level(kind, nb::hotspot_outofcore_options(kind)));
      add_row(table, nb::kAppNames[1], sname,
              na::hotspot_northup(rt, nb::fig_hotspot()));
      nb::dump_observability(rt, flags, std::string(nb::kAppNames[1]) + "-" +
                                            sname);
    }
    {
      nc::Runtime rt(
          nt::apu_two_level(kind, nb::spmv_outofcore_options(kind)));
      add_row(table, nb::kAppNames[2], sname,
              na::spmv_northup(rt, nb::fig_spmv()));
      nb::dump_observability(rt, flags, std::string(nb::kAppNames[2]) + "-" +
                                            sname);
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper reference points: disk GPU share hotspot=22%%, csr=28%%; "
      "ssd GPU share hotspot=59%%, csr=41%%; csr has the largest CPU "
      "share\n");
  return 0;
}
