// Figure 6: normalized runtime of Northup out-of-core execution (SSD and
// disk drive) against in-memory processing, for dense matrix multiply,
// HotSpot-2D, and CSR-Adaptive SpMV on the two-level APU system.
//
// Paper shapes to reproduce:
//   * dense-mm barely slows down (high reuse hides storage latency);
//   * hotspot/csr-adaptive see ~2-2.5x on the disk drive;
//   * on the SSD they see ~0.3-1.4x additional slowdown;
//   * the headline: SSD out-of-core averages ~17% slower than in-memory.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "northup/util/stats.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

namespace {

struct AppRow {
  const char* name;
  double inmem = 0.0;
  double ssd = 0.0;
  double hdd = 0.0;
  bool verified = true;
};

template <typename RunInMem, typename RunNorthup, typename MakeOptions>
AppRow run_app(const nu::Flags& flags, const char* name, RunInMem run_inmem,
               RunNorthup run_northup, MakeOptions make_options) {
  AppRow row;
  row.name = name;
  {
    nc::Runtime rt(nt::apu_two_level(
        nm::StorageKind::Ssd,
        nb::inmemory_options(make_options(nm::StorageKind::Ssd))));
    const auto s = run_inmem(rt);
    row.inmem = s.makespan;
    row.verified = row.verified && s.verified;
    nb::dump_observability(rt, flags, std::string(name) + "-inmem");
  }
  {
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Ssd,
                                     make_options(nm::StorageKind::Ssd)));
    const auto s = run_northup(rt);
    row.ssd = s.makespan;
    row.verified = row.verified && s.verified;
    nb::dump_observability(rt, flags, std::string(name) + "-ssd");
  }
  {
    nc::Runtime rt(nt::apu_two_level(nm::StorageKind::Hdd,
                                     make_options(nm::StorageKind::Hdd)));
    const auto s = run_northup(rt);
    row.hdd = s.makespan;
    row.verified = row.verified && s.verified;
    nb::dump_observability(rt, flags, std::string(name) + "-disk");
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header(
      "Fig 6: in-memory vs Northup out-of-core (SSD, disk), APU 2-level");

  std::vector<AppRow> rows;
  rows.push_back(run_app(
      flags, nb::kAppNames[0],
      [](nc::Runtime& rt) { return na::gemm_inmemory(rt, nb::fig_gemm()); },
      [](nc::Runtime& rt) { return na::gemm_northup(rt, nb::fig_gemm()); },
      nb::gemm_outofcore_options));
  rows.push_back(run_app(
      flags, nb::kAppNames[1],
      [](nc::Runtime& rt) {
        return na::hotspot_inmemory(rt, nb::fig_hotspot());
      },
      [](nc::Runtime& rt) {
        return na::hotspot_northup(rt, nb::fig_hotspot());
      },
      nb::hotspot_outofcore_options));
  rows.push_back(run_app(
      flags, nb::kAppNames[2],
      [](nc::Runtime& rt) { return na::spmv_inmemory(rt, nb::fig_spmv()); },
      [](nc::Runtime& rt) { return na::spmv_northup(rt, nb::fig_spmv()); },
      nb::spmv_outofcore_options));

  nu::TextTable table;
  table.set_header({"app", "in-mem (s)", "ssd (s)", "disk (s)",
                    "ssd norm", "disk norm"});
  std::vector<double> ssd_norms;
  for (const auto& r : rows) {
    table.add_row({r.name, nu::TextTable::num(r.inmem, 4),
                   nu::TextTable::num(r.ssd, 4), nu::TextTable::num(r.hdd, 4),
                   nu::TextTable::num(r.ssd / r.inmem, 2),
                   nu::TextTable::num(r.hdd / r.inmem, 2)});
    ssd_norms.push_back(r.ssd / r.inmem);
    if (!r.verified) std::printf("WARNING: %s failed verification\n", r.name);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nheadline: SSD out-of-core is %.0f%% slower than in-memory on "
      "average (paper: 17%%)\n",
      (nu::geomean(ssd_norms) - 1.0) * 100.0);
  return 0;
}
