// Ablation: temporal blocking (ghost zones) for the out-of-core stencil.
//
// k sweeps per block residency replace k storage round-trips with one, at
// the price of redundant halo compute and wider (partially strided) halo
// reads. The crossover depends on the storage speed: on a slow disk the
// saved passes dominate; on a fast SSD the extra strided strip reads and
// redundant compute eat the gain — the same storage-speed sensitivity the
// paper explores in §V-D.
#include <cstdio>

#include "bench_common.hpp"
#include "northup/algos/hotspot.hpp"
#include "northup/algos/hotspot_temporal.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header(
      "Ablation: temporal blocking (k sweeps per block load), HotSpot-2D");

  na::HotspotConfig cfg = nb::fig_hotspot();
  cfg.iterations = 4;
  cfg.verify = false;

  nu::TextTable table;
  table.set_header({"storage", "k", "io (ms)", "gpu (ms)", "bytes (MiB)",
                    "makespan (ms)", "vs k=1"});
  for (auto kind : {nm::StorageKind::Ssd, nm::StorageKind::Hdd}) {
    const char* sname = kind == nm::StorageKind::Ssd ? "ssd" : "disk";
    {
      // Reference: the §IV-B scheme (packed width-1 halos, 1 sweep/load).
      nc::Runtime rt(
          nt::apu_two_level(kind, nb::hotspot_outofcore_options(kind)));
      const auto stats = na::hotspot_northup(rt, cfg);
      table.add_row(
          {sname, "packed",
           nu::TextTable::num(stats.breakdown.io * 1e3, 1),
           nu::TextTable::num(stats.breakdown.gpu * 1e3, 1),
           nu::TextTable::num(
               static_cast<double>(stats.bytes_moved) / (1 << 20), 1),
           nu::TextTable::num(stats.makespan * 1e3, 1), "-"});
      nb::dump_observability(rt, flags, std::string(sname) + "-packed");
    }
    double base = 0.0;
    for (std::uint64_t k : {1ULL, 2ULL, 4ULL}) {
      nc::Runtime rt(
          nt::apu_two_level(kind, nb::hotspot_outofcore_options(kind)));
      const auto stats = na::hotspot_temporal_northup(rt, cfg, k);
      if (k == 1) base = stats.makespan;
      table.add_row(
          {sname, std::to_string(k),
           nu::TextTable::num(stats.breakdown.io * 1e3, 1),
           nu::TextTable::num(stats.breakdown.gpu * 1e3, 1),
           nu::TextTable::num(
               static_cast<double>(stats.bytes_moved) / (1 << 20), 1),
           nu::TextTable::num(stats.makespan * 1e3, 1),
           nu::TextTable::num(base / stats.makespan, 2) + "x"});
      nb::dump_observability(
          rt, flags, std::string(sname) + "-k" + std::to_string(k));
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected: larger k cuts I/O passes and total bytes; the win is "
      "biggest on the slow disk, while redundant compute grows with k.\n"
      "note: the 'packed' row (the paper's width-1 packed-halo scheme) "
      "beats naive ghost zones at small k because unpacked east/west "
      "strips are strided file reads — packing borders (\u00a7IV-B) and "
      "temporal blocking are complementary, not competing.\n");
  return 0;
}
