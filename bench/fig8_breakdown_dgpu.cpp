// Figure 8: execution-time breakdown on a discrete-GPU system with a
// three-level Northup tree: GPU device memory, main memory, disk drive.
//
// Paper shape: OpenCL (PCIe) transfers contribute 7% / 12% / 33% of
// execution time for dense-mm / HotSpot-2D / CSR-Adaptive.
#include <cstdio>

#include "bench_common.hpp"

namespace nb = northup::bench;
namespace na = northup::algos;
namespace nt = northup::topo;
namespace nc = northup::core;
namespace nm = northup::mem;
namespace nu = northup::util;

namespace {

void add_row(nu::TextTable& table, const char* app,
             const na::RunStats& stats) {
  const auto shares = stats.breakdown.shares();
  auto pct = [&](const char* key) {
    auto it = shares.find(key);
    return nu::TextTable::num((it == shares.end() ? 0.0 : it->second) * 100.0,
                              1);
  };
  table.add_row({app, pct("cpu"), pct("gpu"), pct("setup"), pct("transfer"),
                 pct("io"), pct("runtime"),
                 nu::TextTable::num(stats.makespan * 1e3, 1)});
}

}  // namespace

int main(int argc, char** argv) {
  nu::Flags flags(argc, argv);
  nb::print_header(
      "Fig 8: execution breakdown, discrete-GPU 3-level tree (device mem + "
      "DRAM + disk)");

  // The paper's Fig 8 caption says disk drive, but its transfer shares
  // (7-33%) are only reachable when I/O does not dominate; we report the
  // SSD configuration and note the deviation in EXPERIMENTS.md.
  const auto kind = nm::StorageKind::Ssd;
  nu::TextTable table;
  table.set_header({"app", "cpu%", "gpu%", "setup%", "transfer%", "io%",
                    "runtime%", "makespan(ms)"});
  {
    nc::Runtime rt(nt::dgpu_three_level(kind, nb::gemm_outofcore_options(kind)));
    add_row(table, nb::kAppNames[0], na::gemm_northup(rt, nb::fig_gemm()));
    nb::dump_observability(rt, flags, nb::kAppNames[0]);
  }
  {
    nc::Runtime rt(
        nt::dgpu_three_level(kind, nb::hotspot_outofcore_options(kind)));
    add_row(table, nb::kAppNames[1],
            na::hotspot_northup(rt, nb::fig_hotspot()));
    nb::dump_observability(rt, flags, nb::kAppNames[1]);
  }
  {
    nc::Runtime rt(
        nt::dgpu_three_level(kind, nb::spmv_outofcore_options(kind)));
    add_row(table, nb::kAppNames[2], na::spmv_northup(rt, nb::fig_spmv()));
    nb::dump_observability(rt, flags, nb::kAppNames[2]);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\npaper reference points: OpenCL transfer share dense-mm=7%%, "
      "hotspot=12%%, csr=33%%\n");
  return 0;
}
